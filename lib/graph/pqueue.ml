(* Binary min-heap over parallel arrays. Priorities live in a bare
   [float array] (unboxed storage, so a comparison is two float loads,
   never a pointer chase), stamps and values in their own arrays. The
   A*-based router pushes hundreds of thousands of states per circuit;
   the earlier record-per-entry heap allocated a boxed-float record per
   push and chased entry pointers on every sift comparison. Ordering is
   unchanged: min priority first, FIFO among equal priorities via the
   monotonically increasing stamp. *)

type 'a t = {
  mutable prio : float array;
  mutable stamp : int array;
  mutable value : 'a array;
  mutable size : int;
  mutable next_stamp : int;
}

let create () =
  { prio = [||]; stamp = [||]; value = [||]; size = 0; next_stamp = 0 }

let is_empty q = q.size = 0
let size q = q.size

(* Strict (prio, stamp) lexicographic order against an explicit key —
   the sifts below keep the moving element in locals (hole insertion)
   instead of exchanging three array slots per level, which performs the
   same comparisons in the same order and half the stores. *)
let key_less q ~prio ~stamp i =
  prio < q.prio.(i) || (prio = q.prio.(i) && stamp < q.stamp.(i))

let slot_less q i j =
  q.prio.(i) < q.prio.(j)
  || (q.prio.(i) = q.prio.(j) && q.stamp.(i) < q.stamp.(j))

(* Pops only shrink [size]; slots past it keep their last value until
   overwritten by a later push (exactly as the record heap kept popped
   entries in its backing array), so the grow seed below is only ever
   read into dead slots. *)
let grow q v =
  let cap = Array.length q.prio in
  if q.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let prio = Array.make ncap 0.0 in
    let stamp = Array.make ncap 0 in
    let value = Array.make ncap v in
    Array.blit q.prio 0 prio 0 q.size;
    Array.blit q.stamp 0 stamp 0 q.size;
    Array.blit q.value 0 value 0 q.size;
    q.prio <- prio;
    q.stamp <- stamp;
    q.value <- value
  end

let push q prio value =
  grow q value;
  let stamp = q.next_stamp in
  q.next_stamp <- stamp + 1;
  q.size <- q.size + 1;
  (* Sift up with a hole: parents slide down until the insertion point. *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    key_less q ~prio ~stamp parent
  do
    let parent = (!i - 1) / 2 in
    q.prio.(!i) <- q.prio.(parent);
    q.stamp.(!i) <- q.stamp.(parent);
    q.value.(!i) <- q.value.(parent);
    i := parent
  done;
  q.prio.(!i) <- prio;
  q.stamp.(!i) <- stamp;
  q.value.(!i) <- value

let pop q =
  if q.size = 0 then None
  else begin
    let prio = q.prio.(0) and value = q.value.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      (* Sift the displaced last element down with a hole: children
         bubble up until its slot is found. *)
      let mp = q.prio.(q.size)
      and ms = q.stamp.(q.size)
      and mv = q.value.(q.size) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && not (key_less q ~prio:mp ~stamp:ms l) then
          smallest := l;
        if
          r < q.size
          &&
          (if !smallest = !i then not (key_less q ~prio:mp ~stamp:ms r)
           else slot_less q r !smallest)
        then smallest := r;
        if !smallest = !i then continue := false
        else begin
          q.prio.(!i) <- q.prio.(!smallest);
          q.stamp.(!i) <- q.stamp.(!smallest);
          q.value.(!i) <- q.value.(!smallest);
          i := !smallest
        end
      done;
      q.prio.(!i) <- mp;
      q.stamp.(!i) <- ms;
      q.value.(!i) <- mv
    end;
    Some (prio, value)
  end

let clear q =
  q.prio <- [||];
  q.stamp <- [||];
  q.value <- [||];
  q.size <- 0
