(** Immutable, simple, undirected graphs over vertices [0 .. n-1].

    This is the shared graph substrate of the whole library: device coupling
    graphs ({!Qls_arch.Device}), circuit interaction graphs
    ({!Qls_circuit.Interaction}) and QUBIKOS section graphs are all values
    of this type. Vertices are dense integers; edges are unordered pairs
    stored canonically with the smaller endpoint first.

    The representation keeps both a sorted adjacency array (for O(deg)
    neighbour iteration and O(log deg) membership) and the canonical edge
    list (for O(m) edge iteration), so all common queries are cheap. *)

type t
(** An undirected simple graph. *)

type edge = int * int
(** An undirected edge, canonically [(u, v)] with [u < v]. *)

val create : int -> edge list -> t
(** [create n edges] is the graph on vertices [0 .. n-1] with the given
    edges. Edges may be given in either orientation; duplicates are merged;
    self-loops are rejected.
    @raise Invalid_argument on a self-loop or an endpoint outside
    [\[0, n)]. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices. *)

val n_vertices : t -> int
(** Number of vertices. *)

val n_edges : t -> int
(** Number of (undirected) edges. *)

val edges : t -> edge list
(** Canonical edge list, sorted lexicographically. *)

val edge_array : t -> edge array
(** Same as {!edges} but as a fresh array. *)

val edge_at : t -> int -> edge
(** [edge_at g i] is edge [i] of the canonical (lexicographically sorted)
    edge list, O(1) and allocation-free — the router hot path resolves
    candidate edge indices through this.
    @raise Invalid_argument if [i] is outside [\[0, n_edges g)]. *)

val incident_edges : t -> int -> int array
(** [incident_edges g v] is the ascending array of indices (into the
    canonical edge list) of the edges touching [v]. Precomputed at
    construction; the caller must not mutate it. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] is [true] iff [{u, v}] is an edge. Order-insensitive. *)

val neighbors : t -> int -> int list
(** [neighbors g v] is the sorted list of neighbours of [v]. *)

val neighbors_array : t -> int -> int array
(** [neighbors_array g v] is the internal sorted neighbour array of [v].
    The caller must not mutate it. *)

val degree : t -> int -> int
(** [degree g v] is the number of neighbours of [v]. *)

val max_degree : t -> int
(** Maximum vertex degree, [0] for the empty graph. *)

val degree_histogram : t -> (int * int) list
(** [degree_histogram g] lists [(d, count)] pairs, ascending in [d], for
    every degree that occurs. *)

val add_edges : t -> edge list -> t
(** [add_edges g es] is [g] with the extra edges (duplicates ignored). *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g u v] is [g] without edge [{u, v}] (no-op if absent). *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by the distinct vertices [vs],
    relabelled densely in the order given, together with the array mapping
    new labels back to the original vertices. *)

val union_edges : t -> t -> t
(** [union_edges g h] is the graph on [max (n_vertices g) (n_vertices h)]
    vertices with the union of both edge sets. *)

val is_connected : t -> bool
(** Whether the graph is connected ([true] for graphs with [<= 1]
    vertices). *)

val components : t -> int list list
(** Connected components as sorted vertex lists, ordered by smallest
    member. *)

val component_ids : t -> int array
(** [component_ids g] assigns each vertex the index of its component in
    {!components}. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g acc] folds [f u v] over canonical edges in sorted
    order. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** [iter_edges f g] iterates [f u v] over canonical edges. *)

val equal : t -> t -> bool
(** Structural equality (same vertex count, same edge set). *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]. [perm] must be a
    permutation of [0 .. n-1].
    @raise Invalid_argument if [perm] is not a permutation of the right
    size. *)

val complement_edges : t -> edge list
(** All non-edges of [g], canonical and sorted. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: vertex count and edge list. *)

val to_dot : ?name:string -> t -> string
(** Graphviz representation, for inspecting generated devices and
    interaction graphs. *)
