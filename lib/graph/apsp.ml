type t = { n : int; dist : int array array }

let unreachable = max_int

let compute g =
  let n = Graph.n_vertices g in
  { n; dist = Array.init n (fun v -> Bfs.distances g v) }

let dist t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Apsp.dist: vertex out of range";
  t.dist.(u).(v)

let row t u =
  if u < 0 || u >= t.n then invalid_arg "Apsp.row: vertex out of range";
  t.dist.(u)

let matrix t = t.dist

let eccentricity t v =
  Array.fold_left (fun acc d -> if d = unreachable then acc else max acc d) 0 t.dist.(v)

let diameter t =
  let d = ref 0 in
  for u = 0 to t.n - 1 do
    for v = 0 to t.n - 1 do
      if t.dist.(u).(v) = unreachable then
        invalid_arg "Apsp.diameter: graph is disconnected"
      else d := max !d t.dist.(u).(v)
    done
  done;
  !d

let n t = t.n
