type edge = int * int

type t = {
  n : int;
  adj : int array array; (* sorted neighbour arrays *)
  edges : edge array;    (* canonical (u < v), sorted lexicographically *)
  inc : int array array; (* per vertex: ascending indices into [edges] *)
}

let canon u v = if u < v then (u, v) else (v, u)

let compare_edge (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let check_endpoint n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: vertex %d outside [0, %d)" v n)

let create n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let module ES = Set.Make (struct
    type t = int * int
    let compare = compare_edge
  end) in
  let set =
    List.fold_left
      (fun acc (u, v) ->
        check_endpoint n u;
        check_endpoint n v;
        if u = v then
          invalid_arg (Printf.sprintf "Graph.create: self-loop on %d" u);
        ES.add (canon u v) acc)
      ES.empty edge_list
  in
  let edges = Array.of_list (ES.elements set) in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun nbrs -> Array.sort Int.compare nbrs) adj;
  (* Incident edge indices: edges are scanned in ascending index order, so
     each per-vertex list comes out ascending without a sort. *)
  let inc = Array.init n (fun v -> Array.make deg.(v) 0) in
  let ifill = Array.make n 0 in
  Array.iteri
    (fun i (u, v) ->
      inc.(u).(ifill.(u)) <- i;
      ifill.(u) <- ifill.(u) + 1;
      inc.(v).(ifill.(v)) <- i;
      ifill.(v) <- ifill.(v) + 1)
    edges;
  { n; adj; edges; inc }

let empty n = create n []
let n_vertices g = g.n
let n_edges g = Array.length g.edges
let edges g = Array.to_list g.edges
let edge_array g = Array.copy g.edges

let edge_at g i =
  if i < 0 || i >= Array.length g.edges then
    invalid_arg (Printf.sprintf "Graph.edge_at: index %d outside [0, %d)" i
                   (Array.length g.edges));
  g.edges.(i)

let incident_edges g v =
  check_endpoint g.n v;
  g.inc.(v)

let mem_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n || u = v then false
  else begin
    (* Binary search in the sorted neighbour array of the lower-degree
       endpoint. *)
    let a, x =
      if Array.length g.adj.(u) <= Array.length g.adj.(v) then (g.adj.(u), v)
      else (g.adj.(v), u)
    in
    let lo = ref 0 and hi = ref (Array.length a) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) = x then found := true
      else if a.(mid) < x then lo := mid + 1
      else hi := mid
    done;
    !found
  end

let neighbors g v =
  check_endpoint g.n v;
  Array.to_list g.adj.(v)

let neighbors_array g v =
  check_endpoint g.n v;
  g.adj.(v)

let degree g v =
  check_endpoint g.n v;
  Array.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc nbrs -> max acc (Array.length nbrs)) 0 g.adj

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun nbrs ->
      let d = Array.length nbrs in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    g.adj;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare_edge

let add_edges g es = create g.n (es @ Array.to_list g.edges)

let remove_edge g u v =
  let target = canon u v in
  let kept =
    Array.to_list g.edges |> List.filter (fun e -> e <> target)
  in
  create g.n kept

let induced g vs =
  let back = Array.of_list vs in
  let k = Array.length back in
  let fwd = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      check_endpoint g.n v;
      if Hashtbl.mem fwd v then
        invalid_arg "Graph.induced: duplicate vertex in selection";
      Hashtbl.add fwd v i)
    back;
  let es =
    Array.fold_left
      (fun acc (u, v) ->
        match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
        | Some u', Some v' -> (u', v') :: acc
        | _ -> acc)
      [] g.edges
  in
  (create k es, back)

let union_edges g h =
  create (max g.n h.n) (Array.to_list g.edges @ Array.to_list h.edges)

let components g =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for start = 0 to g.n - 1 do
    if not seen.(start) then begin
      let queue = Queue.create () in
      Queue.add start queue;
      seen.(start) <- true;
      let members = ref [] in
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        members := v :: !members;
        Array.iter
          (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
          g.adj.(v)
      done;
      comps := List.sort Int.compare !members :: !comps
    end
  done;
  List.rev !comps

let component_ids g =
  let ids = Array.make g.n (-1) in
  List.iteri (fun i comp -> List.iter (fun v -> ids.(v) <- i) comp) (components g);
  ids

let is_connected g = g.n <= 1 || List.length (components g) = 1

let fold_edges f g acc =
  Array.fold_left (fun acc (u, v) -> f u v acc) acc g.edges

let iter_edges f g = Array.iter (fun (u, v) -> f u v) g.edges

let equal g h = g.n = h.n && g.edges = h.edges

let relabel g perm =
  if Array.length perm <> g.n then
    invalid_arg "Graph.relabel: permutation size mismatch";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      check_endpoint g.n p;
      if seen.(p) then invalid_arg "Graph.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  create g.n
    (Array.to_list g.edges |> List.map (fun (u, v) -> (perm.(u), perm.(v))))

let complement_edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for v = g.n - 1 downto u + 1 do
      if not (mem_edge g u v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(%d){%a}@]" g.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to g.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
