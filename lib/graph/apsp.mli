(** All-pairs shortest-path distances for unweighted graphs.

    Every router in {!Qls_router} scores SWAP candidates by the physical
    distance between the qubits of pending gates, so the device distance
    matrix is computed once per device and shared. *)

type t
(** A precomputed distance matrix. *)

val compute : Graph.t -> t
(** [compute g] runs one BFS per vertex: O(n · (n + m)). Distances between
    disconnected vertices are {!unreachable}. *)

val unreachable : int
(** Sentinel distance for disconnected pairs ([max_int]). *)

val dist : t -> int -> int -> int
(** [dist t u v] is the hop distance from [u] to [v] ([0] when [u = v]). *)

val row : t -> int -> int array
(** [row t u] is the flat preallocated distance row of [u]:
    [(row t u).(v) = dist t u v], with no per-call allocation or copy.
    The returned array aliases the matrix — callers must treat it as
    read-only and must not hold it across a recompute. This is the
    sanctioned hot-path accessor: an inner scoring loop fetches the row
    once and pays a single array index per query. *)

val matrix : t -> int array array
(** [matrix t] is the whole distance matrix: [(matrix t).(u).(v) = dist t u v].
    Same aliasing contract as {!row} (read-only, no copy), one level up:
    fetch it once per search or pass when even the per-row accessor call
    is measurable — a distance query is then two array indexes with no
    cross-module call at all. *)

val diameter : t -> int
(** Largest finite pairwise distance ([0] for graphs with [<= 1]
    vertex).
    @raise Invalid_argument if the graph is disconnected. *)

val eccentricity : t -> int -> int
(** [eccentricity t v] is the largest finite distance from [v]. *)

val n : t -> int
(** Number of vertices the matrix covers. *)
