let distances g src =
  let n = Graph.n_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Graph.neighbors_array g v)
  done;
  dist

let multi_source_distances g srcs =
  (match srcs with
  | [] -> invalid_arg "Bfs.multi_source_distances: no sources"
  | _ :: _ -> ());
  let n = Graph.n_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    srcs;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Graph.neighbors_array g v)
  done;
  dist

let order g src =
  let n = Graph.n_vertices g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let out = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    out := v :: !out;
    Array.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w queue
        end)
      (Graph.neighbors_array g v)
  done;
  List.rev !out

let edge_order g ~sources ~skip =
  let n = Graph.n_vertices g in
  let visited = Array.make n false in
  let emitted = Hashtbl.create 64 in
  let canon u v = if u < v then (u, v) else (v, u) in
  let out = ref [] in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not visited.(s) then begin
        visited.(s) <- true;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if not (skip v w) then begin
          let key = canon v w in
          if not (Hashtbl.mem emitted key) then begin
            Hashtbl.add emitted key ();
            out := (v, w) :: !out
          end;
          if not visited.(w) then begin
            visited.(w) <- true;
            Queue.add w queue
          end
        end)
      (Graph.neighbors_array g v)
  done;
  List.rev !out

let path g u v =
  let n = Graph.n_vertices g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(u) <- true;
  Queue.add u queue;
  let found = ref (u = v) in
  while (not !found) && not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    Array.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          parent.(w) <- x;
          if w = v then found := true;
          Queue.add w queue
        end)
      (Graph.neighbors_array g x)
  done;
  if not !found then None
  else begin
    let rec build acc x = if x = u then x :: acc else build (x :: acc) parent.(x) in
    Some (build [] v)
  end
