type stats = { nodes_visited : int }

exception Budget_exhausted

(* Order the positive-degree pattern vertices so that every vertex after
   the first of its component has at least one earlier neighbour. Within
   that constraint, prefer high-degree vertices first (fail-fast). *)
let variable_order pattern =
  let n = Graph.n_vertices pattern in
  let placed = Array.make n false in
  let order = ref [] in
  let remaining = ref (List.filter (fun v -> Graph.degree pattern v > 0) (List.init n Fun.id)) in
  let count_placed_nbrs v =
    Array.fold_left
      (fun acc w -> if placed.(w) then acc + 1 else acc)
      0
      (Graph.neighbors_array pattern v)
  in
  while not (List.is_empty !remaining) do
    (* Choose the vertex with (most placed neighbours, then highest degree). *)
    let best =
      List.fold_left
        (fun best v ->
          let key = (count_placed_nbrs v, Graph.degree pattern v) in
          match best with
          | None -> Some (v, key)
          | Some (_, bkey) -> if key > bkey then Some (v, key) else best)
        None !remaining
    in
    match best with
    | None -> assert false
    | Some (v, _) ->
        placed.(v) <- true;
        order := v :: !order;
        remaining := List.filter (fun w -> w <> v) !remaining
  done;
  Array.of_list (List.rev !order)

type state = {
  pattern : Graph.t;
  target : Graph.t;
  core_p : int array; (* pattern vertex -> target vertex or -1 *)
  core_t : int array; (* target vertex -> pattern vertex or -1 *)
  order : int array;
  node_limit : int;
  mutable visited : int;
}

let unmapped_nbr_count g core v =
  Array.fold_left
    (fun acc w -> if core.(w) = -1 then acc + 1 else acc)
    0
    (Graph.neighbors_array g v)

let feasible st h m =
  st.core_t.(m) = -1
  && Graph.degree st.target m >= Graph.degree st.pattern h
  && Array.for_all
       (fun h' ->
         let m' = st.core_p.(h') in
         m' = -1 || Graph.mem_edge st.target m m')
       (Graph.neighbors_array st.pattern h)
  && unmapped_nbr_count st.target st.core_t m
     >= unmapped_nbr_count st.pattern st.core_p h

let candidates st h =
  (* If h has a mapped neighbour, its image must be adjacent to that
     neighbour's image; pick the mapped neighbour with the smallest image
     neighbourhood to enumerate. Otherwise (new component) enumerate all
     unmapped target vertices. *)
  let best = ref None in
  Array.iter
    (fun h' ->
      let m' = st.core_p.(h') in
      if m' >= 0 then
        let d = Graph.degree st.target m' in
        match !best with
        | Some (_, bd) when bd <= d -> ()
        | _ -> best := Some (m', d))
    (Graph.neighbors_array st.pattern h);
  match !best with
  | Some (m', _) -> Array.to_list (Graph.neighbors_array st.target m')
  | None ->
      List.filter (fun m -> st.core_t.(m) = -1)
        (List.init (Graph.n_vertices st.target) Fun.id)

(* Depth-first search; [on_solution] returns [true] to stop the search. *)
let rec search st depth on_solution =
  st.visited <- st.visited + 1;
  if st.visited > st.node_limit then raise Budget_exhausted;
  if depth = Array.length st.order then on_solution ()
  else begin
    let h = st.order.(depth) in
    let rec try_candidates = function
      | [] -> false
      | m :: rest ->
          if feasible st h m then begin
            st.core_p.(h) <- m;
            st.core_t.(m) <- h;
            let stop = search st (depth + 1) on_solution in
            if stop then true
            else begin
              st.core_p.(h) <- -1;
              st.core_t.(m) <- -1;
              try_candidates rest
            end
          end
          else try_candidates rest
    in
    try_candidates (candidates st h)
  end

let complete_isolated st =
  (* Assign degree-0 pattern vertices to arbitrary unmapped target
     vertices. Always possible because |pattern| <= |target|. *)
  let free = ref [] in
  Array.iteri (fun m p -> if p = -1 then free := m :: !free) st.core_t;
  Array.iteri
    (fun h m ->
      if m = -1 then
        match !free with
        | [] -> assert false
        | f :: rest ->
            st.core_p.(h) <- f;
            st.core_t.(f) <- h;
            free := rest)
    st.core_p

let make_state ?(node_limit = max_int) ~pattern ~target () =
  if Graph.n_vertices pattern > Graph.n_vertices target then
    invalid_arg "Vf2: pattern larger than target";
  {
    pattern;
    target;
    core_p = Array.make (Graph.n_vertices pattern) (-1);
    core_t = Array.make (Graph.n_vertices target) (-1);
    order = variable_order pattern;
    node_limit;
    visited = 0;
  }

let find_with_stats ?node_limit ~pattern ~target () =
  let st = make_state ?node_limit ~pattern ~target () in
  let result =
    try search st 0 (fun () -> true) with Budget_exhausted -> false
  in
  let mapping =
    if result then begin
      complete_isolated st;
      Some (Array.copy st.core_p)
    end
    else None
  in
  (mapping, { nodes_visited = st.visited })

let find ?node_limit ~pattern ~target () =
  fst (find_with_stats ?node_limit ~pattern ~target ())

let exists ?node_limit ~pattern ~target () =
  Option.is_some (find ?node_limit ~pattern ~target ())

let extend ~pattern ~target ~fixed =
  let st = make_state ~pattern ~target () in
  List.iter
    (fun (h, m) ->
      if h < 0 || h >= Graph.n_vertices pattern || m < 0 || m >= Graph.n_vertices target
      then invalid_arg "Vf2.extend: fixed pair out of range";
      if st.core_p.(h) <> -1 || st.core_t.(m) <> -1 then
        invalid_arg "Vf2.extend: conflicting fixed assignment";
      st.core_p.(h) <- m;
      st.core_t.(m) <- h)
    fixed;
  (* The fixed part must already be edge-consistent. *)
  let consistent =
    Graph.fold_edges
      (fun u v ok ->
        ok
        &&
        let mu = st.core_p.(u) and mv = st.core_p.(v) in
        mu = -1 || mv = -1 || Graph.mem_edge target mu mv)
      pattern true
  in
  if not consistent then None
  else begin
    (* Re-order so already-fixed vertices come first (they are just
       skipped by the candidate loop when pre-assigned). *)
    let order =
      Array.of_list
        (List.filter (fun h -> st.core_p.(h) = -1) (Array.to_list st.order))
    in
    let st = { st with order } in
    if (try search st 0 (fun () -> true) with Budget_exhausted -> false) then begin
      complete_isolated st;
      Some (Array.copy st.core_p)
    end
    else None
  end

let count ?(limit = max_int) ~pattern ~target () =
  let st = make_state ~pattern ~target () in
  let found = ref 0 in
  (try
     ignore
       (search st 0 (fun () ->
            incr found;
            !found >= limit))
   with Budget_exhausted -> ());
  !found

let is_isomorphic g h =
  Graph.n_vertices g = Graph.n_vertices h
  && Graph.n_edges g = Graph.n_edges h
  && exists ~pattern:g ~target:h ()
