(** A quantum device, as seen by layout synthesis: a named, connected
    coupling graph with a precomputed all-pairs distance matrix.

    Physical qubits are the graph's vertices. Routers only ever query the
    coupling structure and hop distances, so this type is the whole
    hardware model (paper §II). *)

type t
(** A device. *)

val create : ?allow_disconnected:bool -> name:string -> Qls_graph.Graph.t -> t
(** [create ~name g] wraps a coupling graph.
    @raise Invalid_argument if [g] is disconnected or has no vertices —
    QLS on a disconnected device is ill-posed. [~allow_disconnected:true]
    skips only the connectivity check (for partial-device modelling and
    for tests exercising the routers' typed rejection of disconnected
    hardware); distances across components are {!Qls_graph.Apsp.unreachable},
    and {!Qls_router.Route_state.create} refuses such a device with a
    typed [Invalid_argument]. *)

val name : t -> string
(** Human-readable device name (e.g. ["aspen4"]). *)

val graph : t -> Qls_graph.Graph.t
(** The coupling graph. *)

val n_qubits : t -> int
(** Number of physical qubits. *)

val n_edges : t -> int
(** Number of couplers. *)

val distance : t -> int -> int -> int
(** [distance d p p'] is the hop distance between physical qubits.
    Convenience accessor for cold paths; per-candidate router loops must
    use {!distance_row} instead (lint rule [distance-in-loop] enforces
    this). *)

val distance_row : t -> int -> int array
(** [distance_row d p] is the preallocated flat distance row of [p]:
    [(distance_row d p).(p') = distance d p p'], zero-copy. Read-only —
    the array aliases the device's APSP matrix and is shared by every
    caller. Fetch the row once per scoring loop so the hot path is a
    single array index per queried pair. *)

val distance_matrix : t -> int array array
(** [distance_matrix d] is the whole distance matrix,
    [(distance_matrix d).(p).(p') = distance d p p']. Same read-only
    aliasing contract as {!distance_row}, hoisted one level further: the
    innermost router loops (SABRE/tket scoring, the A* excess deltas)
    fetch it once per pass so a distance query is two array indexes with
    no accessor call at all (DESIGN.md §14). *)

val diameter : t -> int
(** Coupling-graph diameter. *)

val coupled : t -> int -> int -> bool
(** Whether a two-qubit gate can run directly on [(p, p')]. *)

val neighbors : t -> int -> int list
(** Physical neighbours of a qubit. *)

val degree : t -> int -> int
(** Coupler count of a qubit. *)

val max_degree : t -> int
(** Largest coupler count on the device. *)

val edges : t -> (int * int) list
(** Canonical coupler list. *)

val edge_at : t -> int -> int * int
(** [edge_at d i] is coupler [i] of the canonical list, O(1).
    @raise Invalid_argument if [i] is outside [\[0, n_edges d)]. *)

val incident_edges : t -> int -> int array
(** [incident_edges d p] is the ascending array of canonical-list indices
    of the couplers touching [p]. Precomputed; do not mutate. The routers
    build their SWAP-candidate sets from this instead of filtering
    {!edges}, so a routing round costs O(front couplers), not
    O(all couplers). *)

val automorphisms : ?limit:int -> t -> int
(** Number of coupling-graph automorphisms, counted up to [limit]
    (default 10_000). The paper attributes part of IBM Rochester's large
    optimality gap to its "fewer axes of symmetry"; this makes that
    quantitative. *)

val pp : Format.formatter -> t -> unit
(** Prints name, qubit and coupler counts. *)
