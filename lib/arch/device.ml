module Graph = Qls_graph.Graph
module Apsp = Qls_graph.Apsp
module Vf2 = Qls_graph.Vf2

type t = { name : string; graph : Graph.t; dist : Apsp.t }

let create ?(allow_disconnected = false) ~name g =
  if Graph.n_vertices g = 0 then invalid_arg "Device.create: empty graph";
  if (not allow_disconnected) && not (Graph.is_connected g) then
    invalid_arg (Printf.sprintf "Device.create: %S is disconnected" name);
  { name; graph = g; dist = Apsp.compute g }

let name d = d.name
let graph d = d.graph
let n_qubits d = Graph.n_vertices d.graph
let n_edges d = Graph.n_edges d.graph
let distance d p p' = Apsp.dist d.dist p p'
let distance_row d p = Apsp.row d.dist p
let distance_matrix d = Apsp.matrix d.dist
let diameter d = Apsp.diameter d.dist
let coupled d p p' = Graph.mem_edge d.graph p p'
let neighbors d p = Graph.neighbors d.graph p
let degree d p = Graph.degree d.graph p
let max_degree d = Graph.max_degree d.graph
let edges d = Graph.edges d.graph
let edge_at d i = Graph.edge_at d.graph i
let incident_edges d p = Graph.incident_edges d.graph p

let automorphisms ?(limit = 10_000) d =
  Vf2.count ~limit ~pattern:d.graph ~target:d.graph ()

let pp ppf d =
  Format.fprintf ppf "%s(%d qubits, %d couplers)" d.name (n_qubits d) (n_edges d)
