module Rng = Qls_graph.Rng

type t = {
  device : Device.t;
  q1 : float array;
  q2 : (int * int, float) Hashtbl.t; (* canonical coupler -> error *)
  readout : float array;
}

let canon p p' = if p < p' then (p, p') else (p', p)

let check_rate name r =
  if r < 0.0 || r >= 1.0 then
    invalid_arg (Printf.sprintf "Noise: %s rate %g outside [0, 1)" name r)

let uniform ?(q1 = 1e-4) ?(q2 = 7e-3) ?(readout = 1.5e-2) device =
  check_rate "q1" q1;
  check_rate "q2" q2;
  check_rate "readout" readout;
  let n = Device.n_qubits device in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (p, p') -> Hashtbl.replace tbl (canon p p') q2) (Device.edges device);
  {
    device;
    q1 = Array.make n q1;
    q2 = tbl;
    readout = Array.make n readout;
  }

let random rng ?(q1 = 1e-4) ?(q2 = 7e-3) ?(readout = 1.5e-2) ?(spread = 3.0)
    device =
  check_rate "q1" q1;
  check_rate "q2" q2;
  check_rate "readout" readout;
  if spread < 1.0 then invalid_arg "Noise.random: spread must be >= 1";
  let draw median =
    (* log-uniform in [median / spread, median * spread], capped below 1 *)
    let lo = log (median /. spread) and hi = log (median *. spread) in
    Float.min 0.999 (exp (lo +. Rng.float rng (hi -. lo)))
  in
  let n = Device.n_qubits device in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p, p') -> Hashtbl.replace tbl (canon p p') (draw q2))
    (Device.edges device);
  {
    device;
    q1 = Array.init n (fun _ -> draw q1);
    q2 = tbl;
    readout = Array.init n (fun _ -> draw readout);
  }

let device t = t.device

let q1_error t p =
  if p < 0 || p >= Array.length t.q1 then
    invalid_arg "Noise.q1_error: qubit out of range";
  t.q1.(p)

let q2_error t p p' =
  match Hashtbl.find_opt t.q2 (canon p p') with
  | Some e -> e
  | None ->
      invalid_arg (Printf.sprintf "Noise.q2_error: (%d,%d) is not a coupler" p p')

let readout_error t p =
  if p < 0 || p >= Array.length t.readout then
    invalid_arg "Noise.readout_error: qubit out of range";
  t.readout.(p)

let extremum_coupler ~better t =
  (* Scan couplers in ascending canonical order so ties on the error
     value resolve to the smallest coupler, never to hash order. *)
  Hashtbl.fold (fun edge e acc -> (edge, e) :: acc) t.q2 []
  |> List.sort (fun ((a, b), _) ((c, d), _) ->
         match Int.compare a c with 0 -> Int.compare b d | n -> n)
  |> List.fold_left
       (fun acc (edge, e) ->
         match acc with
         | Some (_, be) when not (better e be) -> acc
         | _ -> Some (edge, e))
       None
  |> function
  | Some x -> x
  | None -> invalid_arg "Noise: device has no couplers"

let best_coupler t = extremum_coupler ~better:(fun e be -> e < be) t
let worst_coupler t = extremum_coupler ~better:(fun e be -> e > be) t
