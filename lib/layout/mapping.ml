type t = {
  n_physical : int;
  q2p : int array; (* program -> physical *)
  p2q : int array; (* physical -> program, -1 when empty *)
}

let build n_physical q2p =
  let p2q = Array.make n_physical (-1) in
  Array.iteri
    (fun q p ->
      if p < 0 || p >= n_physical then
        invalid_arg
          (Printf.sprintf "Mapping: physical qubit %d outside [0, %d)" p n_physical);
      if p2q.(p) >= 0 then
        invalid_arg
          (Printf.sprintf "Mapping: physical qubit %d assigned twice" p);
      p2q.(p) <- q)
    q2p;
  { n_physical; q2p; p2q }

let identity ~n_program ~n_physical =
  if n_program > n_physical then
    invalid_arg "Mapping.identity: more program than physical qubits";
  build n_physical (Array.init n_program Fun.id)

let of_array ~n_physical a = build n_physical (Array.copy a)

let random rng ~n_program ~n_physical =
  if n_program > n_physical then
    invalid_arg "Mapping.random: more program than physical qubits";
  let perm = Qls_graph.Rng.permutation rng n_physical in
  build n_physical (Array.sub perm 0 n_program)

let n_program m = Array.length m.q2p
let n_physical m = m.n_physical

let phys m q =
  if q < 0 || q >= Array.length m.q2p then
    invalid_arg (Printf.sprintf "Mapping.phys: bad program qubit %d" q);
  m.q2p.(q)

let prog m p =
  if p < 0 || p >= m.n_physical then
    invalid_arg (Printf.sprintf "Mapping.prog: bad physical qubit %d" p);
  if m.p2q.(p) < 0 then None else Some m.p2q.(p)

let occupant m p =
  if p < 0 || p >= m.n_physical then
    invalid_arg (Printf.sprintf "Mapping.occupant: bad physical qubit %d" p);
  m.p2q.(p)

let phys_table m = m.q2p

let to_array m = Array.copy m.q2p

let swap_physical m p p' =
  if p < 0 || p >= m.n_physical || p' < 0 || p' >= m.n_physical then
    invalid_arg "Mapping.swap_physical: physical qubit out of range";
  if p = p' then invalid_arg "Mapping.swap_physical: identical qubits";
  let q2p = Array.copy m.q2p and p2q = Array.copy m.p2q in
  let a = p2q.(p) and b = p2q.(p') in
  p2q.(p) <- b;
  p2q.(p') <- a;
  if a >= 0 then q2p.(a) <- p';
  if b >= 0 then q2p.(b) <- p;
  { m with q2p; p2q }

let apply_swaps m swaps =
  List.fold_left (fun m (p, p') -> swap_physical m p p') m swaps

(* Explicit int-array walk: the A* closed set calls this on every hash
   hit, and the polymorphic compare it replaces paid a generic-compare
   dispatch per element. *)
let equal m m' =
  m.n_physical = m'.n_physical
  && Array.length m.q2p = Array.length m'.q2p
  && (m.q2p == m'.q2p
     ||
     let n = Array.length m.q2p in
     let rec go i = i >= n || (m.q2p.(i) = m'.q2p.(i) && go (i + 1)) in
     go 0)

let compose_program_perm m perm =
  if Array.length perm <> Array.length m.q2p then
    invalid_arg "Mapping.compose_program_perm: size mismatch";
  build m.n_physical (Array.map (fun q -> m.q2p.(q)) perm)

let pp ppf m =
  Format.fprintf ppf "@[<hov 2>{";
  Array.iteri (fun q p -> Format.fprintf ppf "%d->%d;@ " q p) m.q2p;
  Format.fprintf ppf "}@]"
