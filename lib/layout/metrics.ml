let mean = function
  | [] -> invalid_arg "Metrics.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_opt = function [] -> None | xs -> Some (mean xs)

let swap_ratio ~optimal ~swap_counts =
  if optimal <= 0 then invalid_arg "Metrics.swap_ratio: optimal must be positive";
  if List.is_empty swap_counts then invalid_arg "Metrics.swap_ratio: no samples";
  mean (List.map float_of_int swap_counts) /. float_of_int optimal

let geometric_mean = function
  | [] -> invalid_arg "Metrics.geometric_mean: empty"
  | xs ->
      List.iter
        (fun x ->
          if x <= 0.0 then
            invalid_arg "Metrics.geometric_mean: non-positive value")
        xs;
      exp (mean (List.map log xs))

exception Nan_input of string

(* Aggregates over floats must not use polymorphic [compare]: it orders
   NaN below every float, so a single NaN sample silently lands at one
   end of the sorted array and shifts the median instead of failing.
   Order statistics use [Float.compare] and every NaN-absorbing
   aggregate rejects NaN inputs up front. *)
let reject_nan fn xs =
  if List.exists Float.is_nan xs then raise (Nan_input fn)

let median = function
  | [] -> invalid_arg "Metrics.median: empty"
  | xs ->
      reject_nan "Metrics.median" xs;
      let arr = Array.of_list xs in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      if n mod 2 = 1 then arr.(n / 2)
      else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

(* Population standard deviation (the /n variant, not Bessel's /(n-1)):
   campaign points are complete populations of their samples, and the
   singleton case must be 0, not undefined. *)
let stddev = function
  | [] -> invalid_arg "Metrics.stddev: empty"
  | xs ->
      reject_nan "Metrics.stddev" xs;
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var
