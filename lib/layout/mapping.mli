(** Qubit mappings: bijections from program qubits to physical qubits.

    A mapping [f : Q -> P] (paper §II) assigns each program qubit a
    distinct physical qubit. This library works in the regime
    [|Q| <= |P|]; the inverse direction is kept materialised so both
    lookups are O(1). SWAP gates act on *physical* qubits and exchange
    whatever program qubits (or free slots) currently live there. *)

type t
(** An injective program→physical assignment. *)

val identity : n_program:int -> n_physical:int -> t
(** Program qubit [q] on physical qubit [q].
    @raise Invalid_argument if [n_program > n_physical]. *)

val of_array : n_physical:int -> int array -> t
(** [of_array ~n_physical a] maps program qubit [q] to [a.(q)].
    @raise Invalid_argument if entries collide or fall outside
    [\[0, n_physical)]. *)

val random : Qls_graph.Rng.t -> n_program:int -> n_physical:int -> t
(** A uniformly random injective assignment. *)

val n_program : t -> int
(** Number of program qubits. *)

val n_physical : t -> int
(** Number of physical qubits. *)

val phys : t -> int -> int
(** [phys m q] is the physical qubit holding program qubit [q]. *)

val prog : t -> int -> int option
(** [prog m p] is the program qubit on physical qubit [p], if any. *)

val occupant : t -> int -> int
(** [occupant m p] is the program qubit on physical qubit [p], or [-1]
    when the slot is empty. Allocation-free variant of {!prog} for inner
    search loops (an [option] costs a box per call). *)

val phys_table : t -> int array
(** The program→physical table itself, zero-copy: [(phys_table m).(q) =
    phys m q]. Read-only — the array is the mapping's own state (same
    aliasing contract as {!Qls_graph.Apsp.row}; DESIGN.md §14). Hot
    search loops fetch it once per expanded state so a position lookup
    is one array index, not an accessor call with a bounds check. *)

val to_array : t -> int array
(** The program→physical table (fresh copy). *)

val swap_physical : t -> int -> int -> t
(** [swap_physical m p p'] exchanges the contents of the two physical
    qubits (either may be empty). This is the action of a SWAP gate. *)

val apply_swaps : t -> (int * int) list -> t
(** Folds {!swap_physical} over a SWAP list, left to right. *)

val equal : t -> t -> bool
(** Pointwise equality. *)

val compose_program_perm : t -> int array -> t
(** [compose_program_perm m perm] relabels program qubits: the new mapping
    sends [q] to [phys m perm.(q)]. Used by multilevel coarsening. *)

val pp : Format.formatter -> t -> unit
(** Prints [q->p] pairs. *)
