(** Aggregate quality metrics for router evaluations (paper §IV-B).

    The paper's headline metric is the {e SWAP ratio}: average SWAP count
    over a circuit set divided by the (known) optimal SWAP count. A ratio
    of 1 means the tool is optimal; the paper calls the ratio of a tool on
    a benchmark suite its {e optimality gap}. *)

val swap_ratio : optimal:int -> swap_counts:int list -> float
(** [swap_ratio ~optimal ~swap_counts] is
    [mean swap_counts / optimal].
    @raise Invalid_argument if [optimal <= 0] or the list is empty. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val mean_opt : float list -> float option
(** Arithmetic mean, or [None] on empty input — for aggregation paths
    (campaign points where every task failed) that must skip rather than
    die. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values — used for cross-architecture
    summaries where ratios span orders of magnitude.
    @raise Invalid_argument on empty input or non-positive values. *)

val median : float list -> float
(** Median. @raise Invalid_argument on empty input. *)

val stddev : float list -> float
(** Population standard deviation ([0.] for singletons).
    @raise Invalid_argument on empty input. *)
