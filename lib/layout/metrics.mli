(** Aggregate quality metrics for router evaluations (paper §IV-B).

    The paper's headline metric is the {e SWAP ratio}: average SWAP count
    over a circuit set divided by the (known) optimal SWAP count. A ratio
    of 1 means the tool is optimal; the paper calls the ratio of a tool on
    a benchmark suite its {e optimality gap}. *)

val swap_ratio : optimal:int -> swap_counts:int list -> float
(** [swap_ratio ~optimal ~swap_counts] is
    [mean swap_counts / optimal].
    @raise Invalid_argument if [optimal <= 0] or the list is empty. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on empty input. *)

val mean_opt : float list -> float option
(** Arithmetic mean, or [None] on empty input — for aggregation paths
    (campaign points where every task failed) that must skip rather than
    die. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values — used for cross-architecture
    summaries where ratios span orders of magnitude.
    @raise Invalid_argument on empty input or non-positive values. *)

exception Nan_input of string
(** Raised (with the offending function's name) by order statistics and
    deviation aggregates when any sample is NaN. Polymorphic [compare]
    silently sorts NaN below every float, so before this check a single
    NaN sample {e shifted} the median instead of failing — aggregation
    paths must treat this as a data bug, not a value. *)

val median : float list -> float
(** Median, ordered with [Float.compare].
    @raise Invalid_argument on empty input.
    @raise Nan_input if any sample is NaN. *)

val stddev : float list -> float
(** {e Population} standard deviation (the [/n] variant, not the [/(n-1)]
    sample estimator; [0.] for singletons).
    @raise Invalid_argument on empty input.
    @raise Nan_input if any sample is NaN. *)
