(* qls_lint driver: lint lib/, bin/ and bench/ (or explicit paths),
   apply in-source suppressions and the checked-in baseline, print the
   survivors, exit non-zero when any remain. [dune build @lint] runs
   this over the source tree. *)

open Qls_lint

let usage =
  "qls_lint_main [options] [path ...]\n\
   Lints lib/, bin/ and bench/ under --root when no paths are given.\n\
   Exit status: 0 clean, 1 findings, 2 usage/configuration error.\n\
   Options:"

let () =
  let root = ref "." in
  let baseline_path = ref "" in
  let jsonl_path = ref "" in
  let write_baseline = ref "" in
  let rule_names = ref "" in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR  tree root (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE  grandfather file; findings covered by it are waived" );
      ( "--jsonl",
        Arg.Set_string jsonl_path,
        "FILE  also write the surviving findings as JSONL" );
      ( "--write-baseline",
        Arg.Set_string write_baseline,
        "FILE  write the current findings as a fresh baseline and exit 0" );
      ( "--rules",
        Arg.Set_string rule_names,
        "NAMES  comma-separated rule subset (default: all)" );
      ("--quiet", Arg.Set quiet, " suppress the summary line");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let rules =
    match !rule_names with
    | "" -> Rules.all
    | names ->
        String.split_on_char ',' names
        |> List.map (fun n ->
               let n = String.trim n in
               match Rules.by_name n with
               | Some r -> r
               | None ->
                   Printf.eprintf "qls_lint: unknown rule %S\n" n;
                   exit 2)
  in
  let report = Engine.run ~rules ~root:!root (List.rev !paths) in
  if not (String.equal !write_baseline "") then begin
    let entries = Baseline.of_findings report.Engine.findings in
    let oc = open_out !write_baseline in
    output_string oc (Baseline.render entries);
    close_out oc;
    Printf.printf "qls_lint: wrote %d baseline entr%s to %s\n"
      (List.length entries)
      (match entries with [ _ ] -> "y" | _ -> "ies")
      !write_baseline;
    exit 0
  end;
  let applied =
    match !baseline_path with
    | "" ->
        { Baseline.kept = report.Engine.findings; waived = 0; stale = [] }
    | path -> (
        match Baseline.load path with
        | Ok entries -> Baseline.apply entries report.Engine.findings
        | Error msg ->
            Printf.eprintf "qls_lint: baseline %s: %s\n" path msg;
            exit 2)
  in
  List.iter
    (fun f -> print_endline (Finding.to_human f))
    applied.Baseline.kept;
  List.iter
    (fun e ->
      Printf.printf
        "note: stale baseline entry %s\t%s\t%d (fewer findings remain — \
         shrink it)\n"
        e.Baseline.file e.Baseline.rule e.Baseline.allowed)
    applied.Baseline.stale;
  (match !jsonl_path with
  | "" -> ()
  | path ->
      let oc = open_out path in
      List.iter
        (fun f ->
          output_string oc (Finding.to_jsonl f);
          output_char oc '\n')
        applied.Baseline.kept;
      close_out oc);
  if not !quiet then
    Printf.printf
      "qls_lint: %d file(s), %d finding(s) (%d suppressed in source, %d \
       waived by baseline)\n"
      report.Engine.files
      (List.length applied.Baseline.kept)
      report.Engine.suppressed applied.Baseline.waived;
  match applied.Baseline.kept with [] -> exit 0 | _ :: _ -> exit 1
