(* qls_lint driver: lint lib/, bin/ and bench/ (or explicit paths),
   apply in-source suppressions and the checked-in baseline, print the
   survivors, exit non-zero when any remain. [dune build @lint] runs
   this over the source tree with both the Parsetree and the Typedtree
   engines; see Qls_lint.Driver for the flags. *)

let () = exit (Qls_lint.Driver.main ~prog:"qls_lint_main" Sys.argv)
