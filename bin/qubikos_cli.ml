(* The qubikos command-line tool.

   Subcommands:
     generate    build a QUBIKOS instance, print its summary, emit QASM
     verify      re-prove an instance's optimality (certificate + exact)
     route       run a QLS tool on a circuit (generated or OpenQASM file)
     evaluate    one Fig.-4-style panel: all tools over SWAP counts
     campaign    the same panel as a parallel, checkpointed, resumable run
     study       the §IV-A optimality study
     queko       build a QUEKO (0-SWAP, known-depth) instance
     devices     list known architectures *)

open Cmdliner

module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Circuit = Qls_circuit.Circuit
module Qasm = Qls_circuit.Qasm
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier
module Router = Qls_router.Router
module Registry = Qls_router.Registry
module Benchmark = Qubikos.Benchmark
module Generator = Qubikos.Generator
module Certificate = Qubikos.Certificate
module Evaluation = Qubikos.Evaluation
module Queko = Qubikos.Queko

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let device_conv =
  let parse s =
    match Topologies.by_name s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown architecture %S (try: aspen4, sycamore, rochester, \
                eagle, falcon, grid3x3, line<n>, ring<n>, grid<r>x<c>, \
                heavyhex<d>)"
               s))
  in
  let print ppf d = Format.fprintf ppf "%s" (Device.name d) in
  Arg.conv (parse, print)

let arch =
  Arg.(
    value
    & opt device_conv (Topologies.aspen4 ())
    & info [ "a"; "arch" ] ~docv:"ARCH" ~doc:"Target architecture.")

let seed =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let swaps =
  Arg.(
    value & opt int 5
    & info [ "s"; "swaps" ] ~docv:"N" ~doc:"Designed optimal SWAP count.")

let gates =
  Arg.(
    value & opt (some int) None
    & info [ "g"; "gates" ] ~docv:"N"
        ~doc:"Two-qubit gate budget (default: the paper's per-device size).")

let config_of device ~n_swaps ~gates ~seed =
  {
    Generator.default_config with
    n_swaps;
    gate_budget = Option.value ~default:(Evaluation.paper_gate_budget device) gates;
    seed;
  }

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a structured trace of the run: $(i,FILE.jsonl) gets one \
           CRC-sealed JSON line per span (crash-safe, appendable), any \
           other extension gets a Chrome trace-event JSON loadable in \
           Perfetto / chrome://tracing. Tracing off (the default) costs \
           nothing on the routing hot path.")

(* Run [f] with tracing armed when [--trace] was given; the sink is
   flushed/closed on both exits so a failing campaign still leaves a
   readable trace. *)
let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Qls_obs.tracing_to path;
      Fun.protect ~finally:Qls_obs.shutdown f

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write OpenQASM 2.0 here.")
  in
  let save =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Write the full instance (circuit + designed schedule + \
             certificate metadata) in the .qbk format; `verify --file` \
             re-proves it.")
  in
  let run device n_swaps gates seed out save =
    let bench = Generator.generate ~config:(config_of device ~n_swaps ~gates ~seed) device in
    Format.printf "%a@." Benchmark.pp_summary bench;
    Format.printf "designed schedule: %d swaps, physical depth %d@."
      (Transpiled.swap_count bench.Benchmark.designed)
      (Transpiled.depth bench.Benchmark.designed);
    (match out with
    | Some path ->
        Qasm.write_file path bench.Benchmark.circuit;
        Format.printf "wrote %s@." path
    | None -> ());
    (match save with
    | Some path ->
        Qubikos.Serialize.save path bench;
        Format.printf "saved instance to %s@." path
    | None -> ());
    0
  in
  let doc = "Generate a QUBIKOS benchmark with a known optimal SWAP count." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ arch $ swaps $ gates $ seed $ out $ save)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_cmd =
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:"Also refute (optimal - 1) SWAPs with the exact solver.")
  in
  let exact_method =
    Arg.(
      value
      & opt (enum [ ("sat", Certificate.Sat); ("search", Certificate.Search) ])
          Certificate.Sat
      & info [ "method" ] ~docv:"METHOD"
          ~doc:"Exact refuter: $(b,sat) (OLSQ2-style, default) or \
                $(b,search) (transition search).")
  in
  let node_budget =
    Arg.(
      value & opt int 150_000_000
      & info [ "node-budget" ] ~docv:"N"
          ~doc:"Search-method budget, in search-tree nodes.")
  in
  let conflict_budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "conflict-budget" ] ~docv:"N"
          ~doc:"SAT-method budget, in solver conflicts.")
  in
  let portfolio =
    Arg.(
      value & opt int 0
      & info [ "portfolio" ] ~docv:"N"
          ~doc:
            "Race $(docv) deterministically seeded SAT configurations \
             (seeds 0..N-1) on separate domains; 0 disables. SAT method \
             only.")
  in
  let file =
    Arg.(
      value & opt (some Cmdliner.Arg.file) None
      & info [ "f"; "file" ] ~docv:"FILE"
          ~doc:"Re-prove a saved .qbk instance instead of regenerating one.")
  in
  let run device n_swaps gates seed exact exact_method node_budget
      conflict_budget portfolio file =
    let bench =
      match file with
      | Some path -> Qubikos.Serialize.load path
      | None ->
          Generator.generate ~config:(config_of device ~n_swaps ~gates ~seed) device
    in
    Format.printf "%a@." Benchmark.pp_summary bench;
    match Certificate.check bench with
    | Error fs ->
        Format.printf "certificate FAILED:@.%a@."
          (Format.pp_print_list Certificate.pp_failure)
          fs;
        1
    | Ok () ->
        Format.printf "structural certificate: OK (Lemmas 1-3 + designed schedule)@.";
        if exact then begin
          let portfolio_seeds =
            if portfolio > 0 then Some (List.init portfolio Fun.id) else None
          in
          let r =
            Certificate.check_exact ~solver:exact_method
              ~node_budget ~conflict_budget ?portfolio_seeds bench
          in
          (match r.Certificate.winner_seed with
          | Some seed ->
              Format.printf
                "portfolio: %d configurations raced, winner seed %d@."
                portfolio seed
          | None -> ());
          match r.Certificate.exact_agrees with
          | Some true ->
              Format.printf "exact solver: confirmed (no %d-swap solution exists)@."
                (bench.Benchmark.optimal_swaps - 1);
              0
          | Some false ->
              Format.printf "exact solver: REFUTED the certificate (bug!)@.";
              1
          | None ->
              Format.printf "exact solver: budget exhausted (inconclusive)@.";
              0
        end
        else 0
  in
  let doc = "Re-prove the optimality of a generated instance." in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(
      const run $ arch $ swaps $ gates $ seed $ exact $ exact_method
      $ node_budget $ conflict_budget $ portfolio $ file)

(* ------------------------------------------------------------------ *)
(* route                                                               *)
(* ------------------------------------------------------------------ *)

let route_cmd =
  let tool =
    Arg.(
      value & opt string "sabre"
      & info [ "t"; "tool" ] ~docv:"TOOL"
          ~doc:
            "QLS tool: sabre, sabre-decay, mlqls, qmap, tket, transition, \
             exact, olsq.")
  in
  let trials =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"N" ~doc:"SABRE randomised trials.")
  in
  let input =
    Arg.(
      value & opt (some file) None
      & info [ "i"; "input" ] ~docv:"FILE"
          ~doc:"Route this OpenQASM 2.0 file instead of a generated instance.")
  in
  let run device n_swaps gates seed tool trials input trace =
    with_tracing trace @@ fun () ->
    match Registry.by_name ~sabre_trials:trials tool with
    | None ->
        Format.eprintf "unknown tool %S (known: %s)@." tool
          (String.concat ", " Registry.names);
        2
    | Some router -> (
        let parsed =
          match input with
          | Some path -> (
              (* A malformed file is a clean, line-numbered diagnostic —
                 not a backtrace. *)
              match Qasm.read_file_result path with
              | Ok circuit -> Ok (circuit, None)
              | Error e ->
                  Error (Printf.sprintf "%s: %s" path (Qasm.error_to_string e)))
          | None ->
              let bench =
                Generator.generate ~config:(config_of device ~n_swaps ~gates ~seed) device
              in
              Format.printf "%a@." Benchmark.pp_summary bench;
              Ok (bench.Benchmark.circuit, Some bench.Benchmark.optimal_swaps)
        in
        match parsed with
        | Error msg ->
            Format.eprintf "route: %s@." msg;
            2
        | Ok (circuit, optimal) ->
            let t0 = Unix.gettimeofday () in
            let _, report = Router.run_verified router device circuit in
            let dt = Unix.gettimeofday () -. t0 in
            Format.printf "%s: %d swaps, depth %d, %.2fs (result verified)@." tool
              report.Verifier.swap_count report.Verifier.depth dt;
            (match optimal with
            | Some opt ->
                Format.printf "optimal: %d swaps -> ratio %.2fx@." opt
                  (float_of_int report.Verifier.swap_count /. float_of_int opt)
            | None -> ());
            0)
  in
  let doc = "Run a layout-synthesis tool and verify its output." in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run $ arch $ swaps $ gates $ seed $ tool $ trials $ input
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* evaluate                                                            *)
(* ------------------------------------------------------------------ *)

let evaluate_cmd =
  let circuits =
    Arg.(
      value & opt int 3
      & info [ "circuits" ] ~docv:"N" ~doc:"Instances per (device, SWAP count).")
  in
  let trials =
    Arg.(
      value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc:"SABRE trials.")
  in
  let counts =
    Arg.(
      value
      & opt (list int) [ 5; 10; 15; 20 ]
      & info [ "counts" ] ~docv:"N,N,.." ~doc:"Designed SWAP counts.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Paper-scale: 10 circuits/point, 1000 trials.")
  in
  let run device circuits trials counts full seed trace =
    with_tracing trace @@ fun () ->
    let config =
      if full then Evaluation.paper_figure_config device
      else
        {
          (Evaluation.default_figure_config device) with
          circuits_per_point = circuits;
          sabre_trials = trials;
          swap_counts = counts;
          seed;
        }
    in
    let points = Evaluation.run_figure ~config device in
    Format.printf "@[<v>%a@]@." Evaluation.pp_points points;
    Format.printf "mean optimality gap per tool:@.";
    List.iter
      (fun (tool, gap) -> Format.printf "  %-12s %8.1fx@." tool gap)
      (Evaluation.tool_gap_summary points);
    0
  in
  let doc = "Reproduce one Fig.-4 panel (all tools, SWAP ratio per point)." in
  Cmd.v (Cmd.info "evaluate" ~doc)
    Term.(
      const run $ arch $ circuits $ trials $ counts $ full $ seed $ trace_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign_cmd =
  let circuits =
    Arg.(
      value & opt int 3
      & info [ "circuits" ] ~docv:"N" ~doc:"Instances per (device, SWAP count).")
  in
  let trials =
    Arg.(
      value & opt int 5 & info [ "trials" ] ~docv:"N" ~doc:"SABRE trials.")
  in
  let counts =
    Arg.(
      value
      & opt (list int) [ 5; 10; 15; 20 ]
      & info [ "counts" ] ~docv:"N,N,.." ~doc:"Designed SWAP counts.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Paper-scale: 10 circuits/point, 1000 trials.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Qls_harness.Pool.recommended_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: all the machine recommends).")
  in
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Per-task wall-clock budget; an overrunning task is recorded \
             failed and the campaign continues.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts for a task that failed with a retryable \
             (transient/timeout) error; permanent errors are never \
             retried.")
  in
  let backoff =
    Arg.(
      value & opt (some float) None
      & info [ "backoff" ] ~docv:"SEC"
          ~doc:
            "Base retry backoff: attempt n sleeps backoff*2^n seconds \
             (deterministically jittered per task) before re-running.")
  in
  let failure_budget =
    Arg.(
      value & opt (some float) None
      & info [ "failure-budget" ] ~docv:"RATE"
          ~doc:
            "Abort the campaign early when the fraction of freshly failed \
             tasks exceeds RATE (in 0..1) — a doomed sweep stops in \
             minutes; unstarted tasks are left out of the store so \
             $(b,--resume) re-runs them.")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "When a tool fails (after retries), fall back along the \
             degradation chain (exact/olsq -> sabre, qmap -> tket -> \
             sabre) and record the result as degraded — coverage is \
             kept, and degraded points stay distinguishable from the \
             tool's own results.")
  in
  let fsync =
    Arg.(
      value & flag
      & info [ "fsync" ]
          ~doc:
            "fsync the store after every append: the checkpoint survives \
             power loss, at a per-task latency cost.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact" ]
          ~doc:
            "After the campaign, rewrite the store dropping superseded \
             and corrupt lines (corrupt ones are preserved in \
             FILE.quarantine); the rewrite is published atomically.")
  in
  let inject =
    Arg.(
      value & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            (Printf.sprintf
               "Arm the deterministic fault-injection plan SPEC for this \
                run (chaos testing): %s. Example: \
                seed=7;runner.exec:transient:0.3;store.append:torn:0.2"
               Qls_faults.spec_help))
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE.jsonl"
          ~doc:"Append-only JSONL result store (one line per task).")
  in
  let resume =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"FILE.jsonl"
          ~doc:
            "Resume from this store: tasks already recorded there are \
             skipped, new results are appended to it.")
  in
  let rerun_failed =
    Arg.(
      value & flag
      & info [ "rerun-failed" ]
          ~doc:
            "With $(b,--resume), re-execute tasks the store records as \
             failed (e.g. after raising $(b,--timeout)) instead of keeping \
             their failure.")
  in
  let tools =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "tools" ] ~docv:"NAME,.."
          ~doc:
            "Override the evaluated tool set with registry names (e.g. \
             $(b,sabre,olsq)); the default is the paper's heuristic \
             quartet.")
  in
  let run device circuits trials counts full seed jobs timeout retries backoff
      failure_budget degrade fsync compact inject out resume rerun_failed tools
      trace =
    with_tracing trace @@ fun () ->
    let store =
      match (out, resume) with
      | Some o, Some r when o <> r ->
          Error
            (Printf.sprintf "--out %s conflicts with --resume %s; pass one" o r)
      | _, Some r -> Ok (Some r, true)
      | Some o, None ->
          if Sys.file_exists o then
            Error
              (Printf.sprintf
                 "%s already exists; use --resume %s to continue it or pick a \
                  new --out path"
                 o o)
          else Ok (Some o, false)
      | None, None -> Ok (None, false)
    in
    let injection =
      match inject with
      | None -> Ok Qls_faults.none
      | Some spec -> (
          match Qls_faults.parse spec with
          | Ok plan -> Ok plan
          | Error msg -> Error (Printf.sprintf "bad --inject spec: %s" msg))
    in
    let names =
      (* One validator for every entry point: the same typed error the
         library raises if a bad name slips through programmatically. *)
      match tools with
      | None -> Ok None
      | Some ns -> (
          match Evaluation.validate_tools ns with
          | () -> Ok (Some ns)
          | exception Qls_harness.Herror.Error e ->
              Error e.Qls_harness.Herror.message)
    in
    match (store, injection, names) with
    | Error msg, _, _ | _, Error msg, _ | _, _, Error msg ->
        Format.eprintf "campaign: %s@." msg;
        2
    | Ok (store, do_resume), Ok plan, Ok names ->
        if not (Qls_faults.is_none plan) then begin
          Qls_faults.install plan;
          Format.eprintf "campaign: fault injection armed: %s@."
            (Qls_faults.to_string plan)
        end;
        let config =
          if full then Evaluation.paper_figure_config device
          else
            {
              (Evaluation.default_figure_config device) with
              circuits_per_point = circuits;
              sabre_trials = trials;
              swap_counts = counts;
              seed;
            }
        in
        let t0 = Unix.gettimeofday () in
        let rows =
          Evaluation.run_campaign ?names ~jobs ?timeout ~retries ?backoff
            ?store ~resume:do_resume ~rerun_failed ~fsync ?failure_budget
            ~degrade ~progress:true ~config device
        in
        Qls_faults.clear ();
        let elapsed = Unix.gettimeofday () -. t0 in
        let failures = Qls_harness.Campaign.failures rows in
        let degraded_rows = Qls_harness.Campaign.degraded rows in
        let resumed =
          List.length
            (List.filter (fun r -> r.Qls_harness.Campaign.resumed) rows)
        in
        Format.printf
          "campaign: %d tasks (%d resumed, %d degraded, %d failed) on %d \
           worker(s) in %.1fs@."
          (List.length rows) resumed
          (List.length degraded_rows)
          (List.length failures) jobs elapsed;
        (match Qls_harness.Campaign.aborted rows with
        | Some why -> Format.eprintf "campaign aborted early: %s@." why
        | None -> ());
        List.iter
          (fun (task, d) ->
            Format.eprintf "degraded %s via %s: %s@."
              (Qls_harness.Task.id task)
              d.Qls_harness.Task.via
              (Qls_harness.Herror.to_string d.Qls_harness.Task.error))
          degraded_rows;
        List.iter
          (fun (task, err) ->
            Format.eprintf "failed %s: %s@."
              (Qls_harness.Task.id task)
              (Qls_harness.Herror.to_string err))
          failures;
        (match store with
        | Some path ->
            Format.printf "store: %s@." path;
            if compact then begin
              let stats = Qls_harness.Store.compact path in
              Format.printf
                "compacted: %d kept, %d superseded dropped, %d corrupt \
                 quarantined@."
                stats.Qls_harness.Store.kept stats.Qls_harness.Store.superseded
                stats.Qls_harness.Store.quarantined
            end
        | None -> ());
        let points = Evaluation.aggregate_campaign ?names ~config ~device rows in
        Format.printf "@[<v>%a@]@." Evaluation.pp_points points;
        Format.printf "@[<v>%a@]" Evaluation.pp_summary rows;
        Format.printf "mean optimality gap per tool:@.";
        List.iter
          (fun (tool, gap) -> Format.printf "  %-12s %8.1fx@." tool gap)
          (Evaluation.tool_gap_summary points);
        if List.is_empty points then 1 else 0
  in
  let doc =
    "Run a Fig.-4 panel as a parallel, checkpointed campaign (resumable \
     with $(b,--resume), chaos-testable with $(b,--inject))."
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ arch $ circuits $ trials $ counts $ full $ seed $ jobs
      $ timeout $ retries $ backoff $ failure_budget $ degrade $ fsync
      $ compact $ inject $ out $ resume $ rerun_failed $ tools $ trace_arg)

(* ------------------------------------------------------------------ *)
(* study                                                               *)
(* ------------------------------------------------------------------ *)

let study_cmd =
  let circuits =
    Arg.(
      value & opt int 5
      & info [ "circuits" ] ~docv:"N" ~doc:"Instances per SWAP count.")
  in
  let counts =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4 ]
      & info [ "counts" ] ~docv:"N,N,.." ~doc:"Designed SWAP counts.")
  in
  let exact_method =
    Arg.(
      value
      & opt (enum [ ("sat", Certificate.Sat); ("search", Certificate.Search) ])
          Certificate.Sat
      & info [ "method" ] ~docv:"METHOD"
          ~doc:"Exact refuter: $(b,sat) (default) or $(b,search).")
  in
  let node_budget =
    Arg.(
      value & opt int 50_000_000
      & info [ "node-budget" ] ~docv:"N"
          ~doc:"Search-method budget, in search-tree nodes.")
  in
  let conflict_budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "conflict-budget" ] ~docv:"N"
          ~doc:"SAT-method budget, in solver conflicts.")
  in
  let portfolio =
    Arg.(
      value & opt int 0
      & info [ "portfolio" ] ~docv:"N"
          ~doc:
            "Race $(docv) deterministically seeded SAT configurations per \
             instance; 0 disables.")
  in
  let run device circuits counts exact_method node_budget conflict_budget
      portfolio seed =
    let portfolio_seeds =
      if portfolio > 0 then Some (List.init portfolio Fun.id) else None
    in
    let rows =
      Evaluation.run_optimality_study ~circuits_per_count:circuits
        ~swap_counts:counts ~gate_budget:40 ~saturation_cap:1
        ~solver:exact_method ~node_budget ~conflict_budget ?portfolio_seeds
        ~seed device
    in
    Format.printf "@[<v>%a@]@." Evaluation.pp_optimality rows;
    0
  in
  let doc = "Reproduce the optimality study (paper §IV-A)." in
  Cmd.v (Cmd.info "study" ~doc)
    Term.(
      const run $ arch $ circuits $ counts $ exact_method $ node_budget
      $ conflict_budget $ portfolio $ seed)

(* ------------------------------------------------------------------ *)
(* queko                                                               *)
(* ------------------------------------------------------------------ *)

let queko_cmd =
  let depth =
    Arg.(
      value & opt int 20
      & info [ "d"; "depth" ] ~docv:"N" ~doc:"Designed two-qubit depth.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write OpenQASM 2.0 here.")
  in
  let run device depth seed out =
    let q = Queko.generate ~seed ~depth device in
    Format.printf "queko[%s, %d 2q gates, depth %d, optimal swaps 0]@."
      (Device.name device)
      (Circuit.two_qubit_count q.Queko.circuit)
      q.Queko.optimal_depth;
    Format.printf "swap-free placement exists: %b@." (Queko.verify_swap_free q);
    (match out with
    | Some path ->
        Qasm.write_file path q.Queko.circuit;
        Format.printf "wrote %s@." path
    | None -> ());
    0
  in
  let doc = "Generate a QUEKO-style benchmark (0 SWAPs, known depth)." in
  Cmd.v (Cmd.info "queko" ~doc) Term.(const run $ arch $ depth $ seed $ out)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on this Unix-domain socket (unlinked on drain).")
  in
  let tcp =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Also listen on loopback TCP ($(i,PORT) 0 lets the kernel \
                pick; the bound port is printed on startup).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Qls_harness.Pool.recommended_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains routing requests.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission bound: requests queued beyond the workers; when \
                full, new work is refused with a typed overloaded response.")
  in
  let cache_devices =
    Arg.(
      value & opt int 16
      & info [ "cache-devices" ] ~docv:"N"
          ~doc:"Retained devices with their APSP tables (LRU).")
  in
  let cache_instances =
    Arg.(
      value & opt int 128
      & info [ "cache-instances" ] ~docv:"N"
          ~doc:"Retained certified QUBIKOS instances (LRU).")
  in
  let cache_routes =
    Arg.(
      value & opt int 1024
      & info [ "cache-routes" ] ~docv:"N"
          ~doc:"Retained routed results (LRU).")
  in
  let request_log =
    Arg.(
      value & opt (some string) None
      & info [ "request-log" ] ~docv:"FILE"
          ~doc:"Append one CRC-sealed JSONL line per completed request.")
  in
  let default_deadline =
    Arg.(
      value & opt int 0
      & info [ "default-deadline" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget applied to route/evaluate/certify requests \
             that carry no deadline_ms of their own; expired requests get a \
             typed deadline_exceeded response. 0 means no default.")
  in
  let io_timeout =
    Arg.(
      value & opt float 30.
      & info [ "io-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-frame socket budget: a request frame must arrive whole \
             within this of its first byte (slow-loris reaping), and \
             response writes use it as the send timeout. 0 disables.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Reap a connection silent this long between frames. 0 keeps \
             idle connections forever.")
  in
  let hang_threshold =
    Arg.(
      value & opt float 30.
      & info [ "hang-threshold" ] ~docv:"SECS"
          ~doc:
            "Watchdog: a worker whose request heartbeat goes quiet this \
             long is declared lost — the request is answered with a typed \
             internal response and a replacement domain restores capacity. \
             0 disables supervision.")
  in
  let inject =
    Arg.(
      value & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            (Printf.sprintf
               "Arm the deterministic fault-injection plan SPEC for this \
                daemon (chaos testing): %s. Serve sites: serve.frame.read, \
                serve.work.hang, serve.work.exn, serve.log.append."
               Qls_faults.spec_help))
  in
  let run socket tcp jobs queue cache_devices cache_instances cache_routes
      request_log default_deadline io_timeout idle_timeout hang_threshold
      inject trace =
    if Option.is_none socket && Option.is_none tcp then begin
      Format.eprintf "serve: pass --socket PATH and/or --tcp PORT@.";
      2
    end
    else begin
      let injection =
        match inject with
        | None -> Ok Qls_faults.none
        | Some spec -> (
            match Qls_faults.parse spec with
            | Ok plan -> Ok plan
            | Error msg -> Error (Printf.sprintf "bad --inject spec: %s" msg))
      in
      match injection with
      | Error msg ->
          Format.eprintf "serve: %s@." msg;
          2
      | Ok plan ->
          if not (Qls_faults.is_none plan) then begin
            Qls_faults.install plan;
            Format.eprintf "serve: fault injection armed: %s@."
              (Qls_faults.to_string plan)
          end;
          with_tracing trace @@ fun () ->
          let opt_pos v = if v > 0. then Some v else None in
          let server =
            Qls_serve.Server.create
              {
                socket_path = socket;
                tcp_port = tcp;
                jobs;
                queue_capacity = queue;
                device_cache = cache_devices;
                instance_cache = cache_instances;
                route_cache = cache_routes;
                request_log;
                default_deadline_ms =
                  (if default_deadline > 0 then Some default_deadline
                   else None);
                io_timeout = opt_pos io_timeout;
                idle_timeout = opt_pos idle_timeout;
                hang_threshold = opt_pos hang_threshold;
              }
          in
          Qls_serve.Server.install_signal_handlers server;
          Option.iter (Format.printf "serve: listening on %s@.") socket;
          Option.iter
            (Format.printf "serve: listening on 127.0.0.1:%d@.")
            (Qls_serve.Server.bound_tcp_port server);
          Format.printf "serve: %d worker(s), queue %d; SIGTERM drains@." jobs
            queue;
          Qls_serve.Server.run server;
          Format.printf "serve: drained@.";
          0
    end
  in
  let doc = "Run the routing-as-a-service daemon (see DESIGN.md \xc2\xa712)." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket $ tcp $ jobs $ queue $ cache_devices
      $ cache_instances $ cache_routes $ request_log $ default_deadline
      $ io_timeout $ idle_timeout $ hang_threshold $ inject $ trace_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let open Cmdliner in
  let root =
    let doc = "Treat $(docv) as the project root (prefix stripped from paths)." in
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let paths =
    let doc = "Files or directories to lint (default: lib bin bench)." in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let baseline =
    let doc = "Waive findings recorded in the baseline file $(docv)." in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let write_baseline =
    let doc = "Write the current findings to $(docv) as a fresh baseline." in
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE" ~doc)
  in
  let jsonl =
    let doc = "Append machine-readable findings to $(docv) (one JSON per line)." in
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)
  in
  let sarif =
    let doc = "Write a SARIF 2.1.0 report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "sarif" ] ~docv:"FILE" ~doc)
  in
  let rules =
    let doc =
      "Comma-separated rule subset (default: the full catalogue). See \
       DESIGN.md \xc2\xa711 for the rule table."
    in
    Arg.(
      value
      & opt (list ~sep:',' string) []
      & info [ "rules" ] ~docv:"RULES" ~doc)
  in
  let jobs =
    let doc = "Lint files on $(docv) pool domains (deterministic merge)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let check_stale =
    let doc = "Fail when the baseline carries stale (paid-down) entries." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let require_typed =
    let doc =
      "Fail when a typed rule found no .cmt for some file (run $(b,dune build \
       @check) first)."
    in
    Arg.(value & flag & info [ "require-typed" ] ~doc)
  in
  let verbose =
    let doc = "Print the per-file progress of the walk." in
    Arg.(value & flag & info [ "verbose" ] ~doc)
  in
  let run root paths baseline write_baseline jsonl sarif rules jobs check_stale
      require_typed verbose =
    let paths =
      match paths with [] -> [ "lib"; "bin"; "bench" ] | _ -> paths
    in
    Qls_lint.Driver.execute
      {
        Qls_lint.Driver.root;
        paths;
        baseline;
        write_baseline;
        jsonl;
        sarif;
        rules;
        jobs;
        check_stale;
        require_typed;
        quiet = not verbose;
      }
  in
  let doc =
    "Run the source lint (untyped and typed concurrency-discipline rules)."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ root $ paths $ baseline $ write_baseline $ jsonl $ sarif
      $ rules $ jobs $ check_stale $ require_typed $ verbose)

(* ------------------------------------------------------------------ *)
(* devices                                                             *)
(* ------------------------------------------------------------------ *)

let devices_cmd =
  let run () =
    List.iter
      (fun d ->
        Format.printf "%-10s %4d qubits, %4d couplers, diameter %2d, max degree %d@."
          (Device.name d) (Device.n_qubits d) (Device.n_edges d)
          (Device.diameter d) (Device.max_degree d))
      (Topologies.all_paper_devices ()
      @ [ Topologies.falcon27 (); Topologies.grid 3 3 ]);
    Format.printf "parametric: line<n>, ring<n>, grid<r>x<c>, heavyhex<d>@.";
    0
  in
  let doc = "List the known architectures." in
  Cmd.v (Cmd.info "devices" ~doc) Term.(const run $ const ())

let () =
  let doc = "QUBIKOS: quantum layout synthesis benchmarks with known optimal SWAP counts." in
  let info = Cmd.info "qubikos" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd; verify_cmd; route_cmd; evaluate_cmd; campaign_cmd;
            study_cmd; queko_cmd; serve_cmd; lint_cmd; devices_cmd;
          ]))
