module Device = Qls_arch.Device
module Router = Qls_router.Router
module Verifier = Qls_layout.Verifier
module Metrics = Qls_layout.Metrics

type tool_point = {
  device_name : string;
  tool_name : string;
  optimal : int;
  circuits : int;
  mean_swaps : float;
  ratio : float;
  min_swaps : int;
  max_swaps : int;
  mean_seconds : float;
}

type figure_config = {
  swap_counts : int list;
  circuits_per_point : int;
  gate_budget : int;
  single_qubit_ratio : float;
  sabre_trials : int;
  seed : int;
}

let paper_gate_budget device =
  let n = Device.n_qubits device in
  if n <= 20 then 300 else if n <= 60 then 1500 else 3000

let default_figure_config device =
  {
    swap_counts = [ 5; 10; 15; 20 ];
    circuits_per_point = 3;
    gate_budget = paper_gate_budget device;
    single_qubit_ratio = 0.0;
    sabre_trials = 5;
    seed = 1;
  }

let paper_figure_config device =
  {
    (default_figure_config device) with
    circuits_per_point = 10;
    sabre_trials = 1000;
  }

let default_tools config =
  Qls_router.Registry.paper_tools ~sabre_trials:config.sabre_trials
    ~seed:config.seed ()

let run_point ?tools ~config ~n_swaps device =
  let tools = match tools with Some t -> t | None -> default_tools config in
  let gen_config =
    {
      Generator.default_config with
      n_swaps;
      gate_budget = config.gate_budget;
      single_qubit_ratio = config.single_qubit_ratio;
      seed = config.seed + (1000 * n_swaps);
    }
  in
  let instances =
    Generator.generate_suite ~config:gen_config ~count:config.circuits_per_point
      device
  in
  List.iter Certificate.check_exn instances;
  List.map
    (fun tool ->
      let swap_counts, times =
        List.split
          (List.map
             (fun bench ->
               let t0 = Unix.gettimeofday () in
               let _, report =
                 Router.run_verified tool device bench.Benchmark.circuit
               in
               (report.Verifier.swap_count, Unix.gettimeofday () -. t0))
             instances)
      in
      let mean_swaps = Metrics.mean (List.map float_of_int swap_counts) in
      {
        device_name = Device.name device;
        tool_name = tool.Router.name;
        optimal = n_swaps;
        circuits = config.circuits_per_point;
        mean_swaps;
        ratio = Metrics.swap_ratio ~optimal:n_swaps ~swap_counts;
        min_swaps = List.fold_left min max_int swap_counts;
        max_swaps = List.fold_left max 0 swap_counts;
        mean_seconds = Metrics.mean times;
      })
    tools

let run_figure ?tools ~config device =
  List.concat_map
    (fun n_swaps -> run_point ?tools ~config ~n_swaps device)
    config.swap_counts

let tool_gap_summary points =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let acc = Option.value ~default:[] (Hashtbl.find_opt tbl p.tool_name) in
      Hashtbl.replace tbl p.tool_name (p.ratio :: acc))
    points;
  Hashtbl.fold (fun tool ratios acc -> (tool, Metrics.mean ratios) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let pp_points ppf points =
  Format.fprintf ppf "%-10s %-8s %7s %8s %10s %7s %7s %9s@,"
    "device" "tool" "optimal" "circuits" "mean-swaps" "min" "max" "ratio";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10s %-8s %7d %8d %10.1f %7d %7d %8.2fx@,"
        p.device_name p.tool_name p.optimal p.circuits p.mean_swaps p.min_swaps
        p.max_swaps p.ratio)
    points

type optimality_row = {
  o_device : string;
  o_swaps : int;
  o_circuits : int;
  o_certified : int;
  o_exact_confirmed : int;
  o_exact_unknown : int;
  o_mean_gates : float;
}

let run_optimality_study ?(circuits_per_count = 10) ?(swap_counts = [ 1; 2; 3; 4 ])
    ?(gate_budget = 30) ?(saturation_cap = 1) ?solver ?node_budget ?(seed = 0)
    device =
  List.map
    (fun n_swaps ->
      let config =
        {
          Generator.default_config with
          n_swaps;
          gate_budget;
          saturation_cap;
          seed = seed + (1000 * n_swaps);
        }
      in
      let instances =
        Generator.generate_suite ~config ~count:circuits_per_count device
      in
      let certified = ref 0
      and confirmed = ref 0
      and unknown = ref 0
      and gates = ref [] in
      List.iter
        (fun bench ->
          gates := float_of_int (Benchmark.two_qubit_count bench) :: !gates;
          let r = Certificate.check_exact ?solver ?node_budget bench in
          if r.Certificate.certified then incr certified;
          match r.Certificate.exact_agrees with
          | Some true -> incr confirmed
          | Some false -> ()
          | None -> incr unknown)
        instances;
      {
        o_device = Device.name device;
        o_swaps = n_swaps;
        o_circuits = circuits_per_count;
        o_certified = !certified;
        o_exact_confirmed = !confirmed;
        o_exact_unknown = !unknown;
        o_mean_gates = Metrics.mean !gates;
      })
    swap_counts

let pp_optimality ppf rows =
  Format.fprintf ppf "%-10s %6s %9s %10s %16s %14s %11s@,"
    "device" "swaps" "circuits" "certified" "exact-confirmed" "exact-unknown"
    "mean-gates";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %6d %9d %10d %16d %14d %11.1f@,"
        r.o_device r.o_swaps r.o_circuits r.o_certified r.o_exact_confirmed
        r.o_exact_unknown r.o_mean_gates)
    rows
