(** A QUBIKOS benchmark instance: a circuit bundled with everything needed
    to know — and re-prove — its optimal SWAP count.

    Construction (paper §III) proceeds section by section: section [i]
    contributes an interaction graph that is not subgraph-monomorphic to
    the device (so it cannot execute under any single mapping), and the
    dependency ordering forces sections to execute serially, so the
    optimal SWAP count of the whole circuit is exactly the number of
    sections. The designed schedule witnessing the upper bound travels
    with the instance. *)

type section = {
  index : int;  (** 1-based section number *)
  swap : int * int;  (** the designed SWAP's physical coupler *)
  anchor : int;  (** program qubit the section's star is built on *)
  target : int;  (** program qubit the special gate reaches for *)
  special_circuit_index : int;  (** position of the special gate in the circuit *)
  backbone_circuit_indices : int list;
      (** positions of this section's backbone gates (ascending; the
          special gate is last) *)
  interaction : Qls_graph.Graph.t;
      (** the section's interaction graph (backbone gates only) *)
  mapping_before : Qls_layout.Mapping.t;  (** mapping while the section runs *)
  mapping_after : Qls_layout.Mapping.t;  (** mapping after the designed SWAP *)
}
(** Per-section metadata consumed by {!Certificate}. *)

type t = {
  device : Qls_arch.Device.t;
  circuit : Qls_circuit.Circuit.t;  (** full circuit: backbone + fillers *)
  optimal_swaps : int;  (** the provably optimal SWAP count *)
  initial_mapping : Qls_layout.Mapping.t;  (** the designed π₀ *)
  designed : Qls_layout.Transpiled.t;
      (** the designed schedule: a valid transpiled circuit with exactly
          [optimal_swaps] SWAPs *)
  sections : section list;  (** in execution order *)
  seed : int;  (** generation seed, for reproducibility *)
}
(** A benchmark instance. *)

val backbone_indices : t -> int list
(** Circuit indices of all backbone gates, ascending. *)

val filler_count : t -> int
(** Number of two-qubit filler gates (non-backbone). *)

val two_qubit_count : t -> int
(** Total two-qubit gates in the circuit. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: device, gates, optimal SWAPs, sections. *)
