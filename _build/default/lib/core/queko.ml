module Graph = Qls_graph.Graph
module Rng = Qls_graph.Rng
module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping

type t = {
  circuit : Circuit.t;
  device : Device.t;
  hidden_mapping : Mapping.t;
  optimal_depth : int;
}

let generate ?(seed = 0) ?(density = 0.5) ~depth device =
  if depth < 1 then invalid_arg "Queko.generate: depth must be >= 1";
  if density <= 0.0 || density > 1.0 then
    invalid_arg "Queko.generate: density must be in (0, 1]";
  let rng = Rng.create seed in
  let n = Device.n_qubits device in
  let hidden = Mapping.random rng ~n_program:n ~n_physical:n in
  let prog p =
    match Mapping.prog hidden p with Some q -> q | None -> assert false
  in
  let couplers = Array.of_list (Device.edges device) in
  let coupling = Device.graph device in
  let gates = ref [] in
  (* Each layer is a random matching of couplers (under the hidden
     mapping), but the first gate of every layer shares a physical qubit
     with the previous layer's chain gate, so a dependency chain of length
     exactly [depth] runs through the circuit and the designed depth is
     tight in both directions. *)
  let chain = ref (Rng.pick_array rng couplers) in
  for layer = 1 to depth do
    let used = Array.make n false in
    let emit (x, y) =
      used.(x) <- true;
      used.(y) <- true;
      gates := Gate.cx (prog x) (prog y) :: !gates
    in
    (if layer = 1 then emit !chain
     else begin
       let cx, cy = !chain in
       let endpoint = if Rng.bool rng then cx else cy in
       let next = Rng.pick rng (Graph.neighbors coupling endpoint) in
       chain := (endpoint, next);
       emit !chain
     end);
    let order = Array.copy couplers in
    Rng.shuffle rng order;
    Array.iter
      (fun (x, y) ->
        if (not used.(x)) && (not used.(y)) && Rng.float rng 1.0 < density then
          emit (x, y))
      order
  done;
  let circuit = Circuit.create ~n_qubits:n (List.rev !gates) in
  assert (Circuit.two_qubit_depth circuit = depth);
  { circuit; device; hidden_mapping = hidden; optimal_depth = depth }

let verify_swap_free t =
  Qls_circuit.Interaction.swap_free t.circuit (Device.graph t.device)

type suite = Tfl | Bss

let suite_depths = function
  | Tfl -> [ 5; 10; 15; 20; 25; 30; 35; 40; 45 ]
  | Bss -> [ 100; 200; 300; 400; 500; 600; 700; 800; 900 ]

let suite_density = function Tfl -> 0.3 | Bss -> 0.8

let generate_suite ?(seed = 0) suite device =
  List.mapi
    (fun i depth ->
      generate ~seed:(seed + i) ~density:(suite_density suite) ~depth device)
    (suite_depths suite)

let depth_ratio t transpiled =
  if not (Circuit.equal (Qls_layout.Transpiled.source transpiled) t.circuit) then
    invalid_arg "Queko.depth_ratio: transpiled circuit for a different source";
  let physical = Qls_layout.Transpiled.to_physical_circuit transpiled in
  float_of_int (Circuit.two_qubit_depth physical) /. float_of_int t.optimal_depth
