(** The QUBIKOS benchmark generator (paper §III).

    Given a device and a desired optimal SWAP count [n], the generator
    produces a circuit whose optimal SWAP count is exactly [n]:

    + {b SWAP selection} (§III, Fig. 2) — pick a coupler [(p, p')] and an
      {e anchor} program qubit on [p] such that swapping lets the anchor
      reach a new neighbour (the {e target}); such a coupler always exists
      unless the device is complete.
    + {b Non-isomorphic interaction graph} (§III-A) — the anchor interacts
      with all its current neighbours plus, as the {e special gate}, the
      target; every program qubit sitting on a physical qubit of degree
      greater than the anchor's is {e saturated} (interacts with all its
      neighbours). A pigeonhole argument on degrees makes this graph
      non-embeddable: more vertices demand high-degree positions than the
      device has.
    + {b Dependency relation} (§III-B) — connector gates (executable under
      the current mapping) make the section's interaction graph connected;
      a forward BFS edge order from the previous special gate makes every
      section gate depend on it, a reversed BFS edge order towards the new
      special gate makes the special gate depend on every section gate.
    + {b Fillers} — extra two-qubit gates pad the circuit to the requested
      size without changing the optimal count: a filler placed before its
      section's SWAP is executable under the section's entry mapping, one
      placed after it under the exit mapping (the paper's rule that
      [(q2, q7)] "can only be inserted before [g4]"). Optional
      single-qubit gates can be sprinkled in as well.

    The generator asserts the designed schedule validates with exactly [n]
    SWAPs before returning; {!Certificate.check} independently re-proves
    optimality of any instance. *)

type config = {
  n_swaps : int;  (** number of sections = optimal SWAP count, [>= 1] *)
  gate_budget : int;
      (** total two-qubit gates to aim for; fillers pad the backbone up to
          this count (a backbone larger than the budget is kept whole) *)
  single_qubit_ratio : float;
      (** single-qubit gates sprinkled in, as a fraction of the two-qubit
          count (default 0.) *)
  saturation_cap : int;
      (** maximum number of physical positions a section may be required
          to saturate; anchors needing more are not selected. The default
          ([max_int]) allows any anchor, giving sections that constrain
          large parts of the device (the paper's hard regime); small caps
          keep circuits tiny for exact verification (§IV-A) *)
  seed : int;  (** RNG seed; equal seeds reproduce the instance exactly *)
}
(** Generation parameters. *)

val default_config : config
(** [n_swaps = 1], [gate_budget = 0] (backbone only), no single-qubit
    gates, unlimited saturation, seed 0. *)

val generate : ?config:config -> Qls_arch.Device.t -> Benchmark.t
(** Generate one instance.
    @raise Invalid_argument if [n_swaps < 1], or if the device coupling
    graph is complete (no SWAP can ever be forced — paper §III-A). *)

val generate_suite :
  ?config:config -> count:int -> Qls_arch.Device.t -> Benchmark.t list
(** [generate_suite ~count device] generates [count] instances with seeds
    [seed, seed+1, ...]. *)
