(** QUEKO-style benchmarks (Tan & Cong 2020) — the prior work QUBIKOS
    improves on (paper §I).

    A QUEKO circuit is built backwards from a known mapping: gates are
    drawn only between program qubits whose images are coupled, so the
    optimal SWAP count is zero and the hidden mapping is a subgraph
    monomorphism witness. QUEKO additionally controls the optimal {e
    depth} by stacking gate layers ("TFL"/"BSS" suites).

    The limitation QUBIKOS addresses is demonstrated by construction: any
    tool that runs a subgraph-isomorphism placement (e.g.
    {!Qls_router.Placement.vf2}) solves every QUEKO instance outright,
    and a QUEKO instance can never measure SWAP optimality gaps because
    its optimum is always zero. *)

type t = {
  circuit : Qls_circuit.Circuit.t;
  device : Qls_arch.Device.t;
  hidden_mapping : Qls_layout.Mapping.t;  (** the mapping the circuit was built on *)
  optimal_depth : int;  (** designed two-qubit depth *)
}
(** A QUEKO instance; its optimal SWAP count is 0 by construction. *)

val generate :
  ?seed:int ->
  ?density:float ->
  depth:int ->
  Qls_arch.Device.t ->
  t
(** [generate ~depth device] builds a circuit of [depth] layers; each
    layer is a random partial matching of the couplers under the hidden
    mapping, with per-layer qubit participation [density] (default 0.5).
    Every layer contains at least one gate, so the designed two-qubit
    depth is exactly [depth]. *)

val verify_swap_free : t -> bool
(** Confirms a subgraph monomorphism exists (the QUEKO promise). *)

type suite = Tfl | Bss
(** The original QUEKO benchmark families: [Tfl] are shallow
    "Toffoli-like" circuits (depths 5-45), [Bss] deep "supremacy-style"
    ones (depths 100-900). *)

val suite_depths : suite -> int list
(** The designed depths of a suite: TFL 5, 10, ..., 45; BSS 100, 200,
    ..., 900. *)

val generate_suite : ?seed:int -> suite -> Qls_arch.Device.t -> t list
(** One instance per suite depth (seeds [seed, seed+1, ...]). *)

val depth_ratio : t -> Qls_layout.Transpiled.t -> float
(** QUEKO's own metric: the transpiled circuit's two-qubit depth (SWAPs
    included) divided by the known optimal depth. 1.0 means the tool
    found a depth-optimal result.
    @raise Invalid_argument if the transpiled circuit is for a different
    source circuit. *)
