lib/core/benchmark.ml: Format List Qls_arch Qls_circuit Qls_graph Qls_layout
