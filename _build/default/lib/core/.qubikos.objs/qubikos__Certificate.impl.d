lib/core/certificate.ml: Array Benchmark Format Fun Hashtbl List Qls_arch Qls_circuit Qls_graph Qls_layout Qls_router Result
