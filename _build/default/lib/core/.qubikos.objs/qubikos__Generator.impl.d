lib/core/generator.ml: Array Benchmark Float List Qls_arch Qls_circuit Qls_graph Qls_layout Queue Set
