lib/core/evaluation.ml: Benchmark Certificate Format Generator Hashtbl List Option Qls_arch Qls_layout Qls_router Unix
