lib/core/benchmark.mli: Format Qls_arch Qls_circuit Qls_graph Qls_layout
