lib/core/certificate.mli: Benchmark Format
