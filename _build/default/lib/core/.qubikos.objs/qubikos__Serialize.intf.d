lib/core/serialize.mli: Benchmark
