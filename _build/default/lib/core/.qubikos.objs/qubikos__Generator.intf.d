lib/core/generator.mli: Benchmark Qls_arch
