lib/core/serialize.ml: Array Benchmark Buffer Fun List Printf Qls_arch Qls_circuit Qls_graph Qls_layout String
