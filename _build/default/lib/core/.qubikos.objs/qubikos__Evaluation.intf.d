lib/core/evaluation.mli: Certificate Format Qls_arch Qls_router
