lib/core/queko.mli: Qls_arch Qls_circuit Qls_layout
