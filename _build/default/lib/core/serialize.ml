module Graph = Qls_graph.Graph
module Circuit = Qls_circuit.Circuit
module Qasm = Qls_circuit.Qasm
module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled

let version = 1

let mapping_line name m =
  let parts =
    Array.to_list (Mapping.to_array m) |> List.map string_of_int
  in
  name ^ " " ^ String.concat " " parts

let ops_line ops =
  let token = function
    | Transpiled.Gate i -> Printf.sprintf "G%d" i
    | Transpiled.Swap (p, p') -> Printf.sprintf "S%d:%d" p p'
  in
  "ops " ^ String.concat " " (List.map token ops)

let graph_line g =
  let edges =
    List.map (fun (u, v) -> Printf.sprintf "%d:%d" u v) (Graph.edges g)
  in
  Printf.sprintf "interaction %d %s" (Graph.n_vertices g) (String.concat " " edges)

let to_string bench =
  let device = bench.Benchmark.device in
  (match Topologies.by_name (Device.name device) with
  | Some d
    when Device.n_qubits d = Device.n_qubits device
         && Device.edges d = Device.edges device ->
      ()
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf
           "Serialize: device %S is not resolvable through the registry"
           (Device.name device)));
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "QUBIKOS %d" version;
  line "device %s" (Device.name device);
  line "seed %d" bench.Benchmark.seed;
  line "optimal_swaps %d" bench.Benchmark.optimal_swaps;
  line "%s" (mapping_line "initial" bench.Benchmark.initial_mapping);
  line "%s" (ops_line (Transpiled.ops bench.Benchmark.designed));
  List.iter
    (fun s ->
      let p, p' = s.Benchmark.swap in
      line "section %d swap %d %d anchor %d target %d special %d"
        s.Benchmark.index p p' s.Benchmark.anchor s.Benchmark.target
        s.Benchmark.special_circuit_index;
      line "backbone %s"
        (String.concat " "
           (List.map string_of_int s.Benchmark.backbone_circuit_indices));
      line "%s" (graph_line s.Benchmark.interaction);
      line "%s" (mapping_line "before" s.Benchmark.mapping_before);
      line "%s" (mapping_line "after" s.Benchmark.mapping_after))
    bench.Benchmark.sections;
  line "BEGIN QASM";
  Buffer.add_string buf (Qasm.to_string bench.Benchmark.circuit);
  line "END QASM";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let fail ln msg = failwith (Printf.sprintf "Serialize: line %d: %s" ln msg)

let parse_int ln s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ln (Printf.sprintf "expected an integer, got %S" s)

let parse_ints ln parts = List.map (parse_int ln) parts

let parse_pair ln s =
  match String.split_on_char ':' s with
  | [ a; b ] -> (parse_int ln a, parse_int ln b)
  | _ -> fail ln (Printf.sprintf "expected u:v, got %S" s)

let of_string text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n_lines = Array.length lines in
  let pos = ref 0 in
  let peek () = if !pos < n_lines then Some lines.(!pos) else None in
  let next () =
    match peek () with
    | Some l ->
        incr pos;
        (l, !pos)
    | None -> failwith "Serialize: unexpected end of input"
  in
  let expect_fields key =
    let l, ln = next () in
    match String.split_on_char ' ' (String.trim l) with
    | k :: rest when k = key -> (rest, ln)
    | _ -> fail ln (Printf.sprintf "expected a %S record, got %S" key l)
  in
  (* header *)
  let v, ln = expect_fields "QUBIKOS" in
  (match v with
  | [ n ] when parse_int ln n = version -> ()
  | _ -> fail ln "unsupported format version");
  let dev_fields, ln = expect_fields "device" in
  let device =
    match dev_fields with
    | [ name ] -> (
        match Topologies.by_name name with
        | Some d -> d
        | None -> fail ln (Printf.sprintf "unknown device %S" name))
    | _ -> fail ln "malformed device record"
  in
  let seed =
    let fields, ln = expect_fields "seed" in
    match fields with [ s ] -> parse_int ln s | _ -> fail ln "malformed seed"
  in
  let optimal_swaps =
    let fields, ln = expect_fields "optimal_swaps" in
    match fields with [ s ] -> parse_int ln s | _ -> fail ln "malformed optimal_swaps"
  in
  let n_phys = Device.n_qubits device in
  let read_mapping key =
    let fields, ln = expect_fields key in
    Mapping.of_array ~n_physical:n_phys
      (Array.of_list (parse_ints ln fields))
  in
  let initial = read_mapping "initial" in
  let ops =
    let fields, ln = expect_fields "ops" in
    List.map
      (fun tok ->
        if String.length tok < 2 then fail ln (Printf.sprintf "bad op %S" tok)
        else if tok.[0] = 'G' then
          Transpiled.Gate (parse_int ln (String.sub tok 1 (String.length tok - 1)))
        else if tok.[0] = 'S' then begin
          let p, p' = parse_pair ln (String.sub tok 1 (String.length tok - 1)) in
          Transpiled.Swap (p, p')
        end
        else fail ln (Printf.sprintf "bad op %S" tok))
      fields
  in
  (* sections until BEGIN QASM *)
  let sections = ref [] in
  let rec read_sections () =
    match peek () with
    | Some l when String.trim l = "BEGIN QASM" ->
        ignore (next ())
    | Some _ ->
        let fields, ln = expect_fields "section" in
        let index, swap, anchor, target, special =
          match fields with
          | [ i; "swap"; p; p'; "anchor"; a; "target"; t; "special"; ci ] ->
              ( parse_int ln i,
                (parse_int ln p, parse_int ln p'),
                parse_int ln a,
                parse_int ln t,
                parse_int ln ci )
          | _ -> fail ln "malformed section record"
        in
        let backbone, ln = expect_fields "backbone" in
        let backbone = parse_ints ln backbone in
        let inter_fields, ln = expect_fields "interaction" in
        let interaction =
          match inter_fields with
          | n :: edges ->
              Graph.create (parse_int ln n) (List.map (parse_pair ln) edges)
          | [] -> fail ln "malformed interaction record"
        in
        let mapping_before = read_mapping "before" in
        let mapping_after = read_mapping "after" in
        sections :=
          {
            Benchmark.index;
            swap;
            anchor;
            target;
            special_circuit_index = special;
            backbone_circuit_indices = backbone;
            interaction;
            mapping_before;
            mapping_after;
          }
          :: !sections;
        read_sections ()
    | None -> failwith "Serialize: missing QASM block"
  in
  read_sections ();
  (* QASM until END QASM *)
  let qasm = Buffer.create 1024 in
  let rec read_qasm () =
    let l, _ = next () in
    if String.trim l = "END QASM" then ()
    else begin
      Buffer.add_string qasm (l ^ "\n");
      read_qasm ()
    end
  in
  read_qasm ();
  let circuit = Qasm.of_string (Buffer.contents qasm) in
  let designed = Transpiled.create ~source:circuit ~device ~initial ops in
  {
    Benchmark.device;
    circuit;
    optimal_swaps;
    initial_mapping = initial;
    designed;
    sections = List.rev !sections;
    seed;
  }

let save path bench =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string bench))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
