(** Self-contained on-disk format for QUBIKOS instances.

    A distributed benchmark is only useful if its optimality claim travels
    with it: the format stores the circuit, the device name, the designed
    schedule and the per-section metadata, so a consumer can reload an
    instance and re-run {!Certificate.check} locally instead of trusting
    the producer.

    The format is a line-oriented plain-text format (versioned header,
    one record per line); circuits embed their OpenQASM 2 form, so the
    circuit part remains readable by any quantum toolchain. Devices are
    stored by registry name ({!Qls_arch.Topologies.by_name}). *)

val to_string : Benchmark.t -> string
(** Serialise an instance.
    @raise Invalid_argument if the instance's device is not resolvable by
    name through the registry (anonymous custom devices cannot travel). *)

val of_string : string -> Benchmark.t
(** Parse an instance.
    @raise Failure with a line-numbered message on malformed input, an
    unsupported version, or an unknown device name. *)

val save : string -> Benchmark.t -> unit
(** [save path bench] writes {!to_string} to [path]. *)

val load : string -> Benchmark.t
(** [load path] reads and parses [path]. *)
