module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Device = Qls_arch.Device

type violation =
  | Missing_gate of int
  | Duplicated_gate of int
  | Order_broken of { qubit : int; earlier : int; later : int }
  | Uncoupled_gate of { op_index : int; gate : int; phys : int * int }
  | Uncoupled_swap of { op_index : int; phys : int * int }

let pp_violation ppf = function
  | Missing_gate i -> Format.fprintf ppf "source gate %d never emitted" i
  | Duplicated_gate i -> Format.fprintf ppf "source gate %d emitted twice" i
  | Order_broken { qubit; earlier; later } ->
      Format.fprintf ppf
        "qubit %d: gate %d emitted after gate %d (source order reversed)"
        qubit later earlier
  | Uncoupled_gate { op_index; gate; phys = p, p' } ->
      Format.fprintf ppf
        "op %d: gate %d placed on uncoupled physical pair (%d,%d)" op_index
        gate p p'
  | Uncoupled_swap { op_index; phys = p, p' } ->
      Format.fprintf ppf "op %d: SWAP on uncoupled physical pair (%d,%d)"
        op_index p p'

type report = { swap_count : int; depth : int }

let check t =
  let src = Transpiled.source t in
  let dev = Transpiled.device t in
  let n_gates = Circuit.length src in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let seen = Array.make n_gates false in
  (* Last emitted source index per program qubit, for order checking. *)
  let last_on = Array.make (max 1 (Circuit.n_qubits src)) (-1) in
  let mapping = ref (Transpiled.initial_mapping t) in
  let n_swaps = ref 0 in
  List.iteri
    (fun op_index op ->
      match op with
      | Transpiled.Swap (p, p') ->
          incr n_swaps;
          if not (Device.coupled dev p p') then
            add (Uncoupled_swap { op_index; phys = (p, p') });
          mapping := Mapping.swap_physical !mapping p p'
      | Transpiled.Gate i ->
          if i < 0 || i >= n_gates then
            invalid_arg (Printf.sprintf "Verifier: gate index %d out of range" i);
          if seen.(i) then add (Duplicated_gate i) else seen.(i) <- true;
          let g = Circuit.gate src i in
          List.iter
            (fun q ->
              if last_on.(q) > i then
                add (Order_broken { qubit = q; earlier = last_on.(q); later = i })
              else last_on.(q) <- i)
            (Gate.qubits g);
          if Gate.is_two_qubit g then begin
            let a, b = Gate.pair g in
            let pa = Mapping.phys !mapping a and pb = Mapping.phys !mapping b in
            if not (Device.coupled dev pa pb) then
              add (Uncoupled_gate { op_index; gate = i; phys = (pa, pb) })
          end)
    (Transpiled.ops t);
  Array.iteri (fun i s -> if not s then add (Missing_gate i)) seen;
  match !violations with
  | [] -> Ok { swap_count = !n_swaps; depth = Transpiled.depth t }
  | vs -> Error (List.rev vs)

let is_valid t = Result.is_ok (check t)

let check_exn t =
  match check t with
  | Ok r -> r
  | Error vs ->
      failwith
        (Format.asprintf "@[<v>invalid transpiled circuit:@,%a@]"
           (Format.pp_print_list pp_violation)
           vs)
