(** Fidelity estimation for transpiled circuits.

    Multiplies per-operation success rates under a {!Qls_arch.Noise}
    model: each single-qubit gate succeeds with [1 - q1], each two-qubit
    gate with [1 - q2] on its coupler, each inserted SWAP with
    [(1 - q2)^3] (a SWAP compiles to three CNOTs on superconducting
    hardware), and, optionally, each qubit is read out at the end.

    This turns the paper's motivating claim — SWAP overhead destroys
    fidelity — into a measurable quantity: a tool with a 63x SWAP
    optimality gap does not lose 63x fidelity, it loses
    [(1 - q2)^(3 * extra_swaps)], which at realistic error rates reaches
    "essentially zero" well before the gaps the paper reports. *)

val log_success : ?with_readout:bool -> Qls_arch.Noise.t -> Transpiled.t -> float
(** Natural log of the estimated success probability (always [<= 0]).
    Robust for deep circuits where the probability underflows.
    @raise Invalid_argument if the noise model is bound to a different
    device than the transpiled circuit. *)

val success_probability : ?with_readout:bool -> Qls_arch.Noise.t -> Transpiled.t -> float
(** [exp (log_success ...)] — may underflow to [0.] for hopeless
    circuits, which is the honest answer. *)

val swap_overhead_cost : Qls_arch.Noise.t -> Transpiled.t -> float
(** Log-fidelity lost to the inserted SWAPs alone (a [<= 0] number):
    the difference between {!log_success} of the circuit and of the same
    circuit with its SWAPs assumed free. *)
