lib/layout/fidelity.mli: Qls_arch Transpiled
