lib/layout/fidelity.ml: Array Mapping Qls_arch Qls_circuit Transpiled
