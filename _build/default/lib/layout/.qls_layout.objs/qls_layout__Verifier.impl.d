lib/layout/verifier.ml: Array Format List Mapping Printf Qls_arch Qls_circuit Result Transpiled
