lib/layout/transpiled.ml: Format List Mapping Qls_arch Qls_circuit
