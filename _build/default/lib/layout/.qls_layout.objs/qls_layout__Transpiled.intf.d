lib/layout/transpiled.mli: Format Mapping Qls_arch Qls_circuit
