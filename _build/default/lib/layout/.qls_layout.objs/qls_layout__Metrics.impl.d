lib/layout/metrics.ml: Array List
