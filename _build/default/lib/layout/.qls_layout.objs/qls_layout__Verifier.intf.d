lib/layout/verifier.mli: Format Transpiled
