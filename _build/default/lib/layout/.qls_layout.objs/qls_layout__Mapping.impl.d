lib/layout/mapping.ml: Array Format Fun List Printf Qls_graph
