lib/layout/metrics.mli:
