lib/layout/mapping.mli: Format Qls_graph
