(** The output of layout synthesis (paper §II): an initial mapping plus the
    source gates interleaved with inserted SWAPs —
    [C0 · T0 · C1 · T1 · ... · Tn-1 · Cn].

    Source gates are referenced by index into the source circuit so that
    the {!Verifier} can confirm nothing was dropped, duplicated or
    reordered illegally. SWAPs act on physical qubits. *)

type op =
  | Gate of int        (** index of a source-circuit gate *)
  | Swap of int * int  (** SWAP on two coupled physical qubits *)

type t
(** A transpiled circuit. *)

val create :
  source:Qls_circuit.Circuit.t ->
  device:Qls_arch.Device.t ->
  initial:Mapping.t ->
  op list ->
  t
(** Bundle a result. No validity checking happens here — that is the
    {!Verifier}'s job — but sizes must agree.
    @raise Invalid_argument if the mapping's qubit counts do not match the
    source circuit and device. *)

val source : t -> Qls_circuit.Circuit.t
(** The original circuit. *)

val device : t -> Qls_arch.Device.t
(** The target device. *)

val initial_mapping : t -> Mapping.t
(** The initial program→physical assignment. *)

val ops : t -> op list
(** The transpiled operation sequence. *)

val swap_count : t -> int
(** Number of inserted SWAP gates — the paper's headline metric. *)

val swaps : t -> (int * int) list
(** The inserted SWAPs in order. *)

val final_mapping : t -> Mapping.t
(** Mapping after all SWAPs have acted. *)

val mapping_at : t -> int -> Mapping.t
(** [mapping_at t k] is the mapping in effect before op [k]. *)

val to_physical_circuit : t -> Qls_circuit.Circuit.t
(** The hardware-level circuit: source gates rewritten onto physical
    qubits (under the mapping in effect at their position), SWAPs emitted
    as [swap] gates. This is what would be sent to the machine, and what
    {!Qls_circuit.Qasm.to_string} serialises for cross-checking. *)

val depth : t -> int
(** Depth of {!to_physical_circuit}. *)

val pp : Format.formatter -> t -> unit
(** Prints op counts and the SWAP positions. *)
