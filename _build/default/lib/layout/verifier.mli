(** Independent validity checker for transpiled circuits.

    Every router result and every QUBIKOS designed schedule in this
    repository passes through this verifier, so a routing bug cannot
    silently corrupt an experiment. A transpiled circuit is valid iff:

    - {b completeness} — every source gate appears exactly once;
    - {b order} — for each program qubit, the source gates touching it
      appear in their original relative order (gates on disjoint qubits
      commute, so per-qubit order preservation is exactly semantic
      equivalence for layout purposes);
    - {b connectivity} — every two-qubit source gate executes on a coupled
      physical pair under the mapping in effect at its position;
    - {b swap legality} — every SWAP acts on a coupled physical pair. *)

type violation =
  | Missing_gate of int        (** source gate never emitted *)
  | Duplicated_gate of int     (** source gate emitted twice *)
  | Order_broken of { qubit : int; earlier : int; later : int }
      (** gates [earlier] and [later] on [qubit] were emitted in reverse order *)
  | Uncoupled_gate of { op_index : int; gate : int; phys : int * int }
      (** two-qubit gate landed on a non-coupled pair *)
  | Uncoupled_swap of { op_index : int; phys : int * int }
      (** SWAP on a non-coupled pair *)

val pp_violation : Format.formatter -> violation -> unit
(** Human-readable violation. *)

type report = { swap_count : int; depth : int }
(** Summary of a valid transpiled circuit. *)

val check : Transpiled.t -> (report, violation list) result
(** Full check; collects every violation rather than stopping at the
    first. *)

val is_valid : Transpiled.t -> bool
(** [is_valid t] is [true] iff {!check} returns [Ok _]. *)

val check_exn : Transpiled.t -> report
(** Like {!check}.
    @raise Failure listing the violations if invalid. *)
