module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Device = Qls_arch.Device
module Noise = Qls_arch.Noise

let check_binding noise t =
  if Device.name (Noise.device noise) <> Device.name (Transpiled.device t)
     || Device.n_qubits (Noise.device noise) <> Device.n_qubits (Transpiled.device t)
  then invalid_arg "Fidelity: noise model bound to a different device"

let log1p_neg rate = log (1.0 -. rate)

let components noise t =
  check_binding noise t;
  let gates = ref 0.0 in
  let swaps = ref 0.0 in
  let physical = Transpiled.to_physical_circuit t in
  Array.iter
    (fun g ->
      match g with
      | Gate.G1 { q; _ } -> gates := !gates +. log1p_neg (Noise.q1_error noise q)
      | Gate.G2 { a; b; name } ->
          let e = log1p_neg (Noise.q2_error noise a b) in
          if name = "swap" then swaps := !swaps +. (3.0 *. e)
          else gates := !gates +. e)
    (Circuit.gates physical);
  (!gates, !swaps)

let readout_term noise t =
  let device = Transpiled.device t in
  let n_prog = Circuit.n_qubits (Transpiled.source t) in
  let final = Transpiled.final_mapping t in
  let acc = ref 0.0 in
  for q = 0 to n_prog - 1 do
    acc := !acc +. log1p_neg (Noise.readout_error noise (Mapping.phys final q))
  done;
  ignore device;
  !acc

let log_success ?(with_readout = false) noise t =
  let gates, swaps = components noise t in
  gates +. swaps +. (if with_readout then readout_term noise t else 0.0)

let success_probability ?with_readout noise t =
  exp (log_success ?with_readout noise t)

let swap_overhead_cost noise t =
  let _, swaps = components noise t in
  swaps
