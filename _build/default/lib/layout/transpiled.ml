module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Device = Qls_arch.Device

type op = Gate of int | Swap of int * int

type t = {
  source : Circuit.t;
  device : Device.t;
  initial : Mapping.t;
  ops : op list;
}

let create ~source ~device ~initial ops =
  if Mapping.n_program initial <> Circuit.n_qubits source then
    invalid_arg "Transpiled.create: mapping/program qubit count mismatch";
  if Mapping.n_physical initial <> Device.n_qubits device then
    invalid_arg "Transpiled.create: mapping/device qubit count mismatch";
  { source; device; initial; ops }

let source t = t.source
let device t = t.device
let initial_mapping t = t.initial
let ops t = t.ops

let swaps t =
  List.filter_map
    (function Swap (p, p') -> Some (p, p') | Gate _ -> None)
    t.ops

let swap_count t = List.length (swaps t)
let final_mapping t = Mapping.apply_swaps t.initial (swaps t)

let mapping_at t k =
  let rec go m i = function
    | [] -> m
    | _ when i >= k -> m
    | Swap (p, p') :: rest -> go (Mapping.swap_physical m p p') (i + 1) rest
    | Gate _ :: rest -> go m (i + 1) rest
  in
  go t.initial 0 t.ops

let to_physical_circuit t =
  let n_phys = Device.n_qubits t.device in
  let m = ref t.initial in
  let out =
    List.map
      (fun op ->
        match op with
        | Swap (p, p') ->
            m := Mapping.swap_physical !m p p';
            Gate.swap p p'
        | Gate i ->
            let g = Circuit.gate t.source i in
            Gate.map_qubits (fun q -> Mapping.phys !m q) g)
      t.ops
  in
  Circuit.create ~n_qubits:n_phys out

let depth t = Circuit.depth (to_physical_circuit t)

let pp ppf t =
  let n_swap = swap_count t in
  Format.fprintf ppf
    "@[<v>transpiled: %d source gates + %d swaps on %s@,swaps: %a@]"
    (Circuit.length t.source) n_swap
    (Device.name t.device)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (p, p') -> Format.fprintf ppf "(%d,%d)" p p'))
    (swaps t)
