(** OpenQASM 2.0 serialisation.

    Benchmarks are exchangeable with the Python QLS ecosystem (Qiskit,
    t|ket⟩, QMAP all consume OpenQASM 2), so the generator can emit
    circuits other tools can read, and the test suite can round-trip. The
    parser covers the subset this library emits: a header, one [qreg],
    optional [creg], and parameterless named gate applications (parameters
    in parentheses are accepted and discarded — layout synthesis ignores
    them). *)

val to_string : Circuit.t -> string
(** Emit OpenQASM 2.0. SWAP gates are emitted as [swap]; any gate name is
    emitted verbatim. *)

val of_string : string -> Circuit.t
(** Parse the supported OpenQASM 2.0 subset.
    @raise Failure with a line-numbered message on unsupported or
    malformed input. *)

val write_file : string -> Circuit.t -> unit
(** [write_file path c] writes {!to_string} to [path]. *)

val read_file : string -> Circuit.t
(** [read_file path] parses the file at [path]. *)
