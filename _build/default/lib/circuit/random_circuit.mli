(** Random circuit generators for tests and router stress benches. *)

val uniform :
  Qls_graph.Rng.t -> n_qubits:int -> n_two_qubit:int -> single_ratio:float -> Circuit.t
(** [uniform rng ~n_qubits ~n_two_qubit ~single_ratio] draws two-qubit
    gates on uniform distinct qubit pairs and sprinkles roughly
    [single_ratio * n_two_qubit] single-qubit gates at random positions.
    @raise Invalid_argument if [n_qubits < 2] and [n_two_qubit > 0]. *)

val on_interaction_graph :
  Qls_graph.Rng.t -> graph:Qls_graph.Graph.t -> n_gates:int -> Circuit.t
(** Random two-qubit gates drawn uniformly from the edges of a fixed
    interaction graph — circuits with controlled interaction structure. *)

val layered :
  Qls_graph.Rng.t -> n_qubits:int -> n_layers:int -> density:float -> Circuit.t
(** Layered random circuits: each layer is a random partial matching of
    the qubits where each qubit participates with probability [density].
    These resemble the QUEKO "TFL" (Toffoli-like) depth benchmarks. *)
