module Rng = Qls_graph.Rng

let one_qubit_names = [| "h"; "x"; "t"; "s"; "rz" |]

let uniform rng ~n_qubits ~n_two_qubit ~single_ratio =
  if n_two_qubit > 0 && n_qubits < 2 then
    invalid_arg "Random_circuit.uniform: need >= 2 qubits for two-qubit gates";
  if single_ratio < 0.0 then
    invalid_arg "Random_circuit.uniform: negative single_ratio";
  let n_single =
    int_of_float (Float.round (single_ratio *. float_of_int n_two_qubit))
  in
  let gates = ref [] in
  for _ = 1 to n_two_qubit do
    let a = Rng.int rng n_qubits in
    let rec pick_b () =
      let b = Rng.int rng n_qubits in
      if b = a then pick_b () else b
    in
    gates := Gate.cx a (pick_b ()) :: !gates
  done;
  for _ = 1 to n_single do
    let name = Rng.pick_array rng one_qubit_names in
    gates := Gate.g1 name (Rng.int rng n_qubits) :: !gates
  done;
  let arr = Array.of_list !gates in
  Rng.shuffle rng arr;
  Circuit.of_array ~n_qubits arr

let on_interaction_graph rng ~graph ~n_gates =
  let edges = Qls_graph.Graph.edge_array graph in
  if Array.length edges = 0 && n_gates > 0 then
    invalid_arg "Random_circuit.on_interaction_graph: edgeless graph";
  let gates =
    List.init n_gates (fun _ ->
        let a, b = Rng.pick_array rng edges in
        Gate.cx a b)
  in
  Circuit.create ~n_qubits:(Qls_graph.Graph.n_vertices graph) gates

let layered rng ~n_qubits ~n_layers ~density =
  if density < 0.0 || density > 1.0 then
    invalid_arg "Random_circuit.layered: density outside [0, 1]";
  let gates = ref [] in
  for _ = 1 to n_layers do
    let qubits = Rng.permutation rng n_qubits in
    let i = ref 0 in
    while !i + 1 < n_qubits do
      if Rng.float rng 1.0 < density then
        gates := Gate.cx qubits.(!i) qubits.(!i + 1) :: !gates;
      i := !i + 2
    done
  done;
  Circuit.create ~n_qubits (List.rev !gates)
