lib/circuit/interaction.ml: Circuit Gate Option Qls_graph
