lib/circuit/gate.ml: Format
