lib/circuit/layers.mli: Circuit Dag
