lib/circuit/random_circuit.ml: Array Circuit Float Gate List Qls_graph
