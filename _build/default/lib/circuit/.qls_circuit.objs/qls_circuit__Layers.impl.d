lib/circuit/layers.ml: Array Dag List
