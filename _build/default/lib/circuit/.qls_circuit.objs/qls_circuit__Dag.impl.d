lib/circuit/dag.ml: Array Bytes Char Circuit Hashtbl List Queue Stack
