lib/circuit/random_circuit.mli: Circuit Qls_graph
