lib/circuit/interaction.mli: Circuit Qls_graph
