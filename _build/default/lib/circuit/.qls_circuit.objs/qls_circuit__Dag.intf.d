lib/circuit/dag.mli: Circuit
