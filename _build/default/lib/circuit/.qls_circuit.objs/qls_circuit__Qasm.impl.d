lib/circuit/qasm.ml: Array Buffer Circuit Fun Gate List Printf String
