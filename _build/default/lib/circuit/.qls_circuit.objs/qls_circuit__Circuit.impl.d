lib/circuit/circuit.ml: Array Format Gate Int List Printf Set
