type t =
  | G1 of { name : string; q : int }
  | G2 of { name : string; a : int; b : int }

let g1 name q =
  if q < 0 then invalid_arg "Gate.g1: negative qubit";
  G1 { name; q }

let g2 name a b =
  if a < 0 || b < 0 then invalid_arg "Gate.g2: negative qubit";
  if a = b then invalid_arg "Gate.g2: both operands are the same qubit";
  G2 { name; a; b }

let h q = g1 "h" q
let x q = g1 "x" q
let t_gate q = g1 "t" q
let cx a b = g2 "cx" a b
let cz a b = g2 "cz" a b
let swap a b = g2 "swap" a b

let is_two_qubit = function G1 _ -> false | G2 _ -> true
let is_swap = function G2 { name = "swap"; _ } -> true | G1 _ | G2 _ -> false
let name = function G1 { name; _ } | G2 { name; _ } -> name

let qubits = function
  | G1 { q; _ } -> [ q ]
  | G2 { a; b; _ } -> [ a; b ]

let pair = function
  | G1 _ -> invalid_arg "Gate.pair: single-qubit gate"
  | G2 { a; b; _ } -> (a, b)

let acts_on g q =
  match g with
  | G1 { q = q'; _ } -> q = q'
  | G2 { a; b; _ } -> q = a || q = b

let map_qubits f = function
  | G1 { name; q } -> g1 name (f q)
  | G2 { name; a; b } -> g2 name (f a) (f b)

let equal g g' =
  match (g, g') with
  | G1 { name; q }, G1 { name = name'; q = q' } -> name = name' && q = q'
  | G2 { name; a; b }, G2 { name = name'; a = a'; b = b' } ->
      name = name' && a = a' && b = b'
  | G1 _, G2 _ | G2 _, G1 _ -> false

let pp ppf = function
  | G1 { name; q } -> Format.fprintf ppf "%s(%d)" name q
  | G2 { name; a; b } -> Format.fprintf ppf "%s(%d,%d)" name a b

let to_string g = Format.asprintf "%a" pp g
