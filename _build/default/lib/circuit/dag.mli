(** Gate dependency graph over the two-qubit gates (paper §II, Fig. 1(c)).

    Vertices are the circuit's two-qubit gates (indexed densely, in program
    order); there is an arc [g -> g'] when [g'] is the next two-qubit gate
    after [g] on one of [g]'s qubits. Single-qubit gates impose no
    connectivity constraint and are excluded (they are re-inserted after
    layout synthesis).

    Reachability in this DAG is the paper's [Prev] relation: [g'] is in
    [Prev(g)] iff there is a path [g' ->* g]. The QUBIKOS optimality
    certificate checks Lemmas 2 and 3 with {!reachable}. *)

type t
(** A dependency DAG. *)

val of_circuit : Circuit.t -> t
(** Build the DAG of a circuit's two-qubit gates. *)

val n_gates : t -> int
(** Number of two-qubit gates (DAG vertices). *)

val pair : t -> int -> int * int
(** [pair d i] is the qubit pair of DAG vertex [i] (two-qubit gate [i] in
    program order). *)

val circuit_index : t -> int -> int
(** [circuit_index d i] is the position of DAG vertex [i] in the original
    gate sequence (including single-qubit gates). *)

val successors : t -> int -> int list
(** Direct successors. *)

val predecessors : t -> int -> int list
(** Direct predecessors. *)

val in_degree : t -> int -> int
(** Number of direct predecessors. *)

val front_layer : t -> int list
(** Vertices with no predecessors — the initially executable gates. *)

val reachable : t -> int -> int -> bool
(** [reachable d i j] is [true] iff there is a (possibly empty) path
    [i ->* j]. Computed on demand with memoised descendant bitsets; cheap
    to call repeatedly. *)

val descendants : t -> int -> bool array
(** [descendants d i] marks every vertex reachable from [i] (including
    [i]). The returned array is fresh. *)

val topological_order : t -> int list
(** A topological order (program order is always one; this recomputes via
    Kahn's algorithm as a structural sanity check). *)

val serialized : t -> int list -> int list -> bool
(** [serialized d xs ys] is [true] iff every vertex in [xs] reaches every
    vertex in [ys] — i.e. the two gate sets must execute serially
    (Lemma 3). *)
