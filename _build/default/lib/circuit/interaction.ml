let of_pairs ~n_qubits pairs = Qls_graph.Graph.create n_qubits pairs

let of_circuit c =
  of_pairs ~n_qubits:(Circuit.n_qubits c) (Circuit.two_qubit_pairs c)

let of_slice c ~lo ~hi =
  if lo < 0 || hi > Circuit.length c || lo > hi then
    invalid_arg "Interaction.of_slice: bad range";
  let pairs = ref [] in
  for i = hi - 1 downto lo do
    let g = Circuit.gate c i in
    if Gate.is_two_qubit g then pairs := Gate.pair g :: !pairs
  done;
  of_pairs ~n_qubits:(Circuit.n_qubits c) !pairs

let swap_free_mapping c coupling =
  Qls_graph.Vf2.find ~pattern:(of_circuit c) ~target:coupling ()

let swap_free c coupling = Option.is_some (swap_free_mapping c coupling)
