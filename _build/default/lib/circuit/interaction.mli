(** Interaction graphs (paper §II, Fig. 1(b)).

    The interaction graph [G_I(Q, E_Q)] of a circuit has one vertex per
    program qubit and an edge [{q, q'}] whenever some two-qubit gate acts
    on [q] and [q']. A circuit is executable without SWAP insertion iff its
    interaction graph admits a {!Qls_graph.Vf2} monomorphism into the
    device coupling graph. *)

val of_circuit : Circuit.t -> Qls_graph.Graph.t
(** The interaction graph over all [n_qubits] of the circuit (qubits with
    no two-qubit gates are isolated vertices). *)

val of_pairs : n_qubits:int -> (int * int) list -> Qls_graph.Graph.t
(** Interaction graph straight from a list of two-qubit gate pairs. *)

val of_slice : Circuit.t -> lo:int -> hi:int -> Qls_graph.Graph.t
(** [of_slice c ~lo ~hi] is the interaction graph of gates with indices in
    [\[lo, hi)] — used to inspect QUBIKOS sections. *)

val swap_free : Circuit.t -> Qls_graph.Graph.t -> bool
(** [swap_free c coupling] is [true] iff the circuit can be executed with
    no SWAP gates on the device (monomorphism test). *)

val swap_free_mapping : Circuit.t -> Qls_graph.Graph.t -> int array option
(** Like {!swap_free} but returns the witnessing qubit placement
    [program -> physical] when one exists. *)
