(** ASAP timeslices of the two-qubit gates.

    Slice [k] holds the two-qubit gates whose longest dependency chain has
    length [k]. Slices are what the t|ket⟩-style router looks ahead over,
    and slice count is the two-qubit depth. *)

val slices : Circuit.t -> (int * int) list list
(** [slices c] are the qubit pairs of the two-qubit gates, grouped by ASAP
    layer, earliest first. Within a slice, gates act on disjoint qubits. *)

val slices_of_dag : Dag.t -> int list list
(** DAG-vertex indices grouped by ASAP layer. *)

val layer_of : Dag.t -> int array
(** [layer_of d] maps each DAG vertex to its ASAP layer index. *)
