(** Quantum gates, as far as layout synthesis cares about them.

    Layout synthesis is insensitive to the unitary a gate implements; only
    its qubit footprint matters (paper §II). Gates therefore carry a name
    (kept for QASM round-tripping and debugging) plus one or two program
    qubit indices. *)

type t =
  | G1 of { name : string; q : int }          (** single-qubit gate *)
  | G2 of { name : string; a : int; b : int } (** two-qubit gate on distinct qubits *)

val g1 : string -> int -> t
(** [g1 name q] is a single-qubit gate. @raise Invalid_argument if [q < 0]. *)

val g2 : string -> int -> int -> t
(** [g2 name a b] is a two-qubit gate.
    @raise Invalid_argument if [a = b] or either is negative. *)

val h : int -> t
(** Hadamard. *)

val x : int -> t
(** Pauli-X. *)

val t_gate : int -> t
(** T gate. *)

val cx : int -> int -> t
(** CNOT with control [a], target [b]. *)

val cz : int -> int -> t
(** Controlled-Z. *)

val swap : int -> int -> t
(** An explicit SWAP gate (appears in transpiled circuits). *)

val is_two_qubit : t -> bool
(** Whether the gate acts on two qubits. *)

val is_swap : t -> bool
(** Whether the gate is a SWAP (by name). *)

val name : t -> string
(** The gate's name. *)

val qubits : t -> int list
(** The qubits the gate acts on (one or two elements). *)

val pair : t -> int * int
(** The qubit pair of a two-qubit gate.
    @raise Invalid_argument on a single-qubit gate. *)

val acts_on : t -> int -> bool
(** [acts_on g q] is [true] iff [g] touches qubit [q]. *)

val map_qubits : (int -> int) -> t -> t
(** [map_qubits f g] renames the qubits of [g] through [f].
    @raise Invalid_argument if the renaming collapses a two-qubit gate. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** [pp] prints e.g. [cx(3,7)] or [h(2)]. *)

val to_string : t -> string
(** String form of {!pp}. *)
