let layer_of d =
  let n = Dag.n_gates d in
  let layer = Array.make n 0 in
  List.iter
    (fun v ->
      let l =
        List.fold_left (fun acc p -> max acc (layer.(p) + 1)) 0 (Dag.predecessors d v)
      in
      layer.(v) <- l)
    (Dag.topological_order d);
  layer

let slices_of_dag d =
  let layer = layer_of d in
  let n_layers = Array.fold_left (fun acc l -> max acc (l + 1)) 0 layer in
  let buckets = Array.make n_layers [] in
  for v = Dag.n_gates d - 1 downto 0 do
    buckets.(layer.(v)) <- v :: buckets.(layer.(v))
  done;
  Array.to_list buckets

let slices c =
  let d = Dag.of_circuit c in
  List.map (List.map (Dag.pair d)) (slices_of_dag d)
