type t = { n_qubits : int; gates : Gate.t array }

let check_gate n g =
  List.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg
          (Printf.sprintf "Circuit: gate %s uses qubit outside [0, %d)"
             (Gate.to_string g) n))
    (Gate.qubits g)

let of_array ~n_qubits gates =
  if n_qubits < 0 then invalid_arg "Circuit: negative qubit count";
  Array.iter (check_gate n_qubits) gates;
  { n_qubits; gates = Array.copy gates }

let create ~n_qubits gates = of_array ~n_qubits (Array.of_list gates)

let n_qubits c = c.n_qubits
let gates c = Array.copy c.gates
let gate c i = c.gates.(i)
let length c = Array.length c.gates

let two_qubit_count c =
  Array.fold_left (fun acc g -> if Gate.is_two_qubit g then acc + 1 else acc) 0 c.gates

let single_qubit_count c = length c - two_qubit_count c

let two_qubit_gates c =
  let acc = ref [] in
  Array.iteri
    (fun i g -> if Gate.is_two_qubit g then acc := (i, Gate.pair g) :: !acc)
    c.gates;
  List.rev !acc

let two_qubit_pairs c = List.map snd (two_qubit_gates c)

let append c g =
  check_gate c.n_qubits g;
  { c with gates = Array.append c.gates [| g |] }

let concat c d =
  {
    n_qubits = max c.n_qubits d.n_qubits;
    gates = Array.append c.gates d.gates;
  }

let map_qubits f c ~n_qubits =
  of_array ~n_qubits (Array.map (Gate.map_qubits f) c.gates)

let used_qubits c =
  let module IS = Set.Make (Int) in
  Array.fold_left
    (fun acc g -> List.fold_left (fun acc q -> IS.add q acc) acc (Gate.qubits g))
    IS.empty c.gates
  |> IS.elements

let depth_with ~count c =
  let avail = Array.make (max 1 c.n_qubits) 0 in
  let total = ref 0 in
  Array.iter
    (fun g ->
      if count g then begin
        let qs = Gate.qubits g in
        let start = List.fold_left (fun acc q -> max acc avail.(q)) 0 qs in
        let finish = start + 1 in
        List.iter (fun q -> avail.(q) <- finish) qs;
        total := max !total finish
      end)
    c.gates;
  !total

let depth c = depth_with ~count:(fun _ -> true) c
let two_qubit_depth c = depth_with ~count:Gate.is_two_qubit c

let equal c d =
  c.n_qubits = d.n_qubits
  && Array.length c.gates = Array.length d.gates
  && Array.for_all2 Gate.equal c.gates d.gates

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit on %d qubits, %d gates:@," c.n_qubits
    (Array.length c.gates);
  Array.iteri (fun i g -> Format.fprintf ppf "  %3d: %a@," i Gate.pp g) c.gates;
  Format.fprintf ppf "@]"
