(** Quantum circuits: a declared qubit count and a gate sequence.

    The sequence order is the program order; the executable partial order
    is derived from it by {!Dag}. Values are immutable. *)

type t
(** A circuit. *)

val create : n_qubits:int -> Gate.t list -> t
(** [create ~n_qubits gates] checks every gate fits in [\[0, n_qubits)].
    @raise Invalid_argument otherwise. *)

val of_array : n_qubits:int -> Gate.t array -> t
(** Like {!create}; the array is copied. *)

val n_qubits : t -> int
(** Declared qubit count. *)

val gates : t -> Gate.t array
(** The gate sequence (fresh copy). *)

val gate : t -> int -> Gate.t
(** [gate c i] is the [i]-th gate. *)

val length : t -> int
(** Total number of gates. *)

val two_qubit_count : t -> int
(** Number of two-qubit gates. *)

val single_qubit_count : t -> int
(** Number of single-qubit gates. *)

val two_qubit_gates : t -> (int * (int * int)) list
(** [(index, (a, b))] for every two-qubit gate, in program order. *)

val two_qubit_pairs : t -> (int * int) list
(** Qubit pairs of the two-qubit gates, in program order. *)

val append : t -> Gate.t -> t
(** [append c g] adds [g] at the end. *)

val concat : t -> t -> t
(** [concat c d] runs [c] then [d]; qubit counts are maxed.
    Both circuits must address qubits consistently (shared namespace). *)

val map_qubits : (int -> int) -> t -> n_qubits:int -> t
(** Renames all qubits; the result has [n_qubits] qubits. *)

val used_qubits : t -> int list
(** Sorted list of qubits touched by at least one gate. *)

val depth : t -> int
(** Circuit depth counting all gates, via ASAP scheduling. *)

val two_qubit_depth : t -> int
(** Depth counting only two-qubit gates. *)

val equal : t -> t -> bool
(** Structural equality: same qubit count and same gate sequence. *)

val pp : Format.formatter -> t -> unit
(** Multi-line printer. *)
