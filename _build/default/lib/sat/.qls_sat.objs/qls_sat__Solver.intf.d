lib/sat/solver.mli:
