module Graph = Qls_graph.Graph
module Generators = Qls_graph.Generators

let line n = Device.create ~name:(Printf.sprintf "line%d" n) (Generators.path n)
let ring n = Device.create ~name:(Printf.sprintf "ring%d" n) (Generators.cycle n)

let grid rows cols =
  Device.create
    ~name:(Printf.sprintf "grid%dx%d" rows cols)
    (Generators.grid rows cols)

(* Heavy-hex lattice in the IBM Eagle (ibm_washington) numbering: rows of
   [row_len] qubits (the first row drops its last column, the last row its
   first), with spacer qubits between consecutive rows every 4 columns,
   the spacer column offset alternating between 0 and 2. Qubit ids run row
   by row with each inter-row spacer block numbered between its rows,
   matching IBM's published layout. *)
let heavy_hex_rows ~n_rows ~row_len =
  if n_rows < 2 then invalid_arg "heavy_hex: need at least 2 rows";
  if row_len < 3 then invalid_arg "heavy_hex: need row length >= 3";
  let col_range r =
    if r = 0 then (0, row_len - 2)
    else if r = n_rows - 1 then (1, row_len - 1)
    else (0, row_len - 1)
  in
  (* Assign ids. *)
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let row_id = Array.make n_rows [||] in
  let edges = ref [] in
  let spacer_info = ref [] in
  (* (row r, col c, id) pending spacers to connect to row r+1 *)
  for r = 0 to n_rows - 1 do
    let lo, hi = col_range r in
    let ids = Array.make row_len (-1) in
    for c = lo to hi do
      ids.(c) <- fresh ();
      if c > lo then edges := (ids.(c - 1), ids.(c)) :: !edges
    done;
    row_id.(r) <- ids;
    (* Connect the spacers hanging from the previous row. *)
    List.iter
      (fun (c, sid) ->
        if ids.(c) >= 0 then edges := (sid, ids.(c)) :: !edges)
      !spacer_info;
    spacer_info := [];
    if r < n_rows - 1 then begin
      let offset = if r mod 2 = 0 then 0 else 2 in
      let lo', hi' = col_range (r + 1) in
      let c = ref offset in
      while !c < row_len do
        if !c >= lo && !c <= hi && !c >= lo' && !c <= hi' then begin
          let sid = fresh () in
          edges := (ids.(!c), sid) :: !edges;
          spacer_info := !spacer_info @ [ (!c, sid) ]
        end;
        c := !c + 4
      done
    end
  done;
  Graph.create !next !edges

let heavy_hex ~distance =
  if distance < 3 || distance mod 2 = 0 then
    invalid_arg "heavy_hex: distance must be odd and >= 3";
  let g = heavy_hex_rows ~n_rows:distance ~row_len:((2 * distance) + 1) in
  Device.create ~name:(Printf.sprintf "heavyhex%d" distance) g

let aspen4 () =
  (* Two octagonal rings bridged by two couplers; Rigetti's 10-17 labels
     for the second ring are renumbered to 8-15. *)
  let ring_a = List.init 8 (fun i -> (i, (i + 1) mod 8)) in
  let ring_b = List.init 8 (fun i -> (8 + i, 8 + ((i + 1) mod 8))) in
  let bridges = [ (1, 14); (2, 13) ] in
  Device.create ~name:"aspen4" (Graph.create 16 (ring_a @ ring_b @ bridges))

let sycamore54 () =
  (* 9 x 6 diagonal (45-degree rotated) grid: qubit (r, c) is r*6 + c;
     each qubit couples to the two diagonal neighbours in the next row. *)
  let rows = 9 and cols = 6 in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 2 do
    for c = 0 to cols - 1 do
      edges := (id r c, id (r + 1) c) :: !edges;
      if r mod 2 = 0 then begin
        if c + 1 < cols then edges := (id r c, id (r + 1) (c + 1)) :: !edges
      end
      else if c - 1 >= 0 then edges := (id r c, id (r + 1) (c - 1)) :: !edges
    done
  done;
  Device.create ~name:"sycamore" (Graph.create (rows * cols) !edges)

let rochester_edges =
  [
    (0, 1); (0, 5); (1, 2); (2, 3); (3, 4); (4, 6); (5, 9); (6, 13);
    (7, 8); (7, 16); (8, 9); (9, 10); (10, 11); (11, 12); (11, 17);
    (12, 13); (13, 14); (14, 15); (15, 18); (16, 19); (17, 23); (18, 27);
    (19, 20); (20, 21); (21, 22); (21, 28); (22, 23); (23, 24); (24, 25);
    (25, 26); (25, 29); (26, 27); (28, 32); (29, 36); (30, 31); (30, 39);
    (31, 32); (32, 33); (33, 34); (34, 35); (34, 40); (35, 36); (36, 37);
    (37, 38); (38, 41); (39, 42); (40, 46); (41, 50); (42, 43); (43, 44);
    (44, 45); (44, 51); (45, 46); (46, 47); (47, 48); (48, 49); (48, 52);
    (49, 50);
  ]

let rochester () =
  Device.create ~name:"rochester" (Graph.create 53 rochester_edges)

let eagle127 () =
  let g = heavy_hex_rows ~n_rows:7 ~row_len:15 in
  assert (Graph.n_vertices g = 127);
  assert (Graph.n_edges g = 144);
  Device.create ~name:"eagle" g

let falcon27_edges =
  [
    (0, 1); (1, 2); (2, 3); (3, 5); (1, 4); (4, 7); (5, 8); (6, 7);
    (7, 10); (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15);
    (13, 14); (14, 16); (15, 18); (16, 19); (17, 18); (18, 21); (19, 20);
    (19, 22); (21, 23); (22, 25); (23, 24); (24, 25); (25, 26);
  ]

let falcon27 () = Device.create ~name:"falcon" (Graph.create 27 falcon27_edges)

let all_paper_devices () = [ aspen4 (); sycamore54 (); rochester (); eagle127 () ]

let parse_parametric name =
  let starts_with p = String.length name > String.length p
                      && String.sub name 0 (String.length p) = p in
  let tail p = String.sub name (String.length p) (String.length name - String.length p) in
  if starts_with "line" then
    Option.map line (int_of_string_opt (tail "line"))
  else if starts_with "ring" then
    Option.map ring (int_of_string_opt (tail "ring"))
  else if starts_with "grid" then
    match String.split_on_char 'x' (tail "grid") with
    | [ r; c ] -> (
        match (int_of_string_opt r, int_of_string_opt c) with
        | Some r, Some c when r > 0 && c > 0 -> Some (grid r c)
        | _ -> None)
    | _ -> None
  else if starts_with "heavyhex" then
    Option.map (fun d -> heavy_hex ~distance:d) (int_of_string_opt (tail "heavyhex"))
  else None

let by_name name =
  match name with
  | "aspen4" | "aspen-4" -> Some (aspen4 ())
  | "sycamore" | "sycamore54" -> Some (sycamore54 ())
  | "rochester" -> Some (rochester ())
  | "eagle" | "eagle127" -> Some (eagle127 ())
  | "falcon" | "falcon27" -> Some (falcon27 ())
  | "grid3x3" -> Some (grid 3 3)
  | _ -> ( try parse_parametric name with Invalid_argument _ -> None)
