(** Per-device error models.

    The paper's motivation for minimising SWAP count is fidelity: every
    inserted SWAP costs three CNOTs of error. This module gives devices a
    simple depolarising-style error model — per-qubit single-qubit and
    readout error rates and per-coupler two-qubit error rates — so the
    fidelity impact of a layout tool's SWAP overhead can be quantified
    ({!Qls_layout.Fidelity}).

    Rates are probabilities in [\[0, 1)]; typical superconducting values
    are [~1e-4] (1q), [~5e-3..1e-2] (2q), [~1e-2] (readout). *)

type t
(** An error model bound to a device. *)

val uniform :
  ?q1:float -> ?q2:float -> ?readout:float -> Device.t -> t
(** [uniform device] assigns every qubit and coupler the same rates
    (defaults: [q1 = 1e-4], [q2 = 7e-3], [readout = 1.5e-2]).
    @raise Invalid_argument on a rate outside [\[0, 1)]. *)

val random :
  Qls_graph.Rng.t ->
  ?q1:float -> ?q2:float -> ?readout:float -> ?spread:float ->
  Device.t -> t
(** [random rng device] draws each rate log-uniformly within a factor of
    [spread] (default 3.0) around the given medians — the qubit-to-qubit
    variability real calibration data shows. *)

val device : t -> Device.t
(** The device the model is bound to. *)

val q1_error : t -> int -> float
(** Single-qubit gate error on a physical qubit. *)

val q2_error : t -> int -> int -> float
(** Two-qubit gate error on a coupler (order-insensitive).
    @raise Invalid_argument if [(p, p')] is not a coupler. *)

val readout_error : t -> int -> float
(** Measurement error on a physical qubit. *)

val best_coupler : t -> (int * int) * float
(** The lowest-error coupler and its rate. *)

val worst_coupler : t -> (int * int) * float
(** The highest-error coupler and its rate. *)
