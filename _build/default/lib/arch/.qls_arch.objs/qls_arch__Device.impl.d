lib/arch/device.ml: Format Printf Qls_graph
