lib/arch/noise.mli: Device Qls_graph
