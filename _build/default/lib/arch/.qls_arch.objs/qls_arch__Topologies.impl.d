lib/arch/topologies.ml: Array Device List Option Printf Qls_graph String
