lib/arch/noise.ml: Array Device Float Hashtbl List Printf Qls_graph
