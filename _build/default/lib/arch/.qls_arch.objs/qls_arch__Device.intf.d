lib/arch/device.mli: Format Qls_graph
