lib/arch/topologies.mli: Device
