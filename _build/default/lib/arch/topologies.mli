(** The device topologies used in the paper, plus parametric families.

    Concrete devices (paper §IV): Rigetti Aspen-4 (16q), Google Sycamore
    (54q), IBM Rochester (53q), IBM Eagle (127q), and the 3×3 grid used in
    the optimality study. Exact layouts as built are documented in
    DESIGN.md §8. *)

val line : int -> Device.t
(** [line n] is a 1-D chain, the architecture of Fig. 1(d). *)

val ring : int -> Device.t
(** [ring n] is a cycle ([n >= 3]). *)

val grid : int -> int -> Device.t
(** [grid rows cols] is a 2-D mesh. [grid 3 3] is the optimality-study
    device. *)

val heavy_hex : distance:int -> Device.t
(** IBM heavy-hex lattice family: [distance] rows of [2*distance + 1]
    qubits plus spacer qubits (odd, [>= 3]). [distance = 3] gives 23
    qubits, [distance = 5] gives 65, and [distance = 7] is exactly the
    127-qubit Eagle lattice. Used as a parametric family in tests and
    ablations. *)

val aspen4 : unit -> Device.t
(** Rigetti Aspen-4, 16 qubits: two octagonal rings bridged by two
    couplers. *)

val sycamore54 : unit -> Device.t
(** Google Sycamore, 54 qubits: 9×6 diagonal (45°-rotated) grid, 88
    couplers. *)

val rochester : unit -> Device.t
(** IBM Rochester, 53 qubits: the published hexagonal-ladder coupling
    list, 58 couplers. *)

val eagle127 : unit -> Device.t
(** IBM Eagle (ibm_washington pattern), 127 qubits: heavy-hex rows of
    14/15 with 4 spacer qubits between rows; 144 couplers. *)

val falcon27 : unit -> Device.t
(** IBM Falcon (ibm_cairo pattern), 27 qubits — a mid-size heavy-hex used
    in tests. *)

val by_name : string -> Device.t option
(** Lookup in the registry: ["aspen4"], ["sycamore"], ["rochester"],
    ["eagle"], ["falcon"], ["grid3x3"], plus parametric forms
    ["line<n>"], ["ring<n>"], ["grid<r>x<c>"]. *)

val all_paper_devices : unit -> Device.t list
(** The four Figure-4 devices, in paper order:
    Aspen-4, Sycamore, Rochester, Eagle. *)
