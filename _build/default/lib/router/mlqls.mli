(** An ML-QLS-style multilevel layout synthesiser (Lin & Cong 2024).

    ML-QLS attacks scale with the classic multilevel metaheuristic from
    VLSI placement:

    + {b coarsen} — repeatedly contract the weighted interaction graph by
      heavy-edge matching until it is small;
    + {b initial place} — place the coarsest clusters on the device with a
      weighted greedy placement;
    + {b uncoarsen + refine} — undo one contraction level at a time,
      seeding children at their cluster's physical anchor and improving
      the placement by pairwise-exchange local search on the weighted
      spread cost;
    + {b route} — run a SABRE-style routing pass from the refined
      placement.

    The placement stages are the tool's contribution; the routing pass is
    standard. This mirrors the published structure faithfully enough to
    reproduce the paper's qualitative finding (§IV-B): comparable to
    LightSABRE on small and mid devices, weaker on the 127-qubit Eagle. *)

type options = {
  coarsen_to : int;  (** stop coarsening at this many clusters, default 8 *)
  refine_sweeps : int;  (** local-search sweeps per level, default 4 *)
  seed : int;  (** RNG stream *)
  routing : Sabre.options;  (** options for the final routing pass *)
}

val default_options : options
(** Coarsen to 8, 4 sweeps, single-trial stock SABRE routing pass. *)

val place : ?options:options -> Qls_arch.Device.t -> Qls_circuit.Circuit.t -> Qls_layout.Mapping.t
(** The multilevel placement alone (no routing) — exposed for tests and
    for the placement-quality ablation bench. *)

val weighted_cost :
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Mapping.t ->
  int
(** The weighted spread cost the placement stages minimise: sum over
    interaction pairs of [gate_count * distance]. Exposed for placement
    quality comparisons. *)

val route :
  ?options:options ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t
(** Full pipeline. A supplied [initial] skips the multilevel placement. *)

val router : ?options:options -> unit -> Router.t
(** Package as ["mlqls"]. *)
