type t = {
  name : string;
  route :
    ?initial:Qls_layout.Mapping.t ->
    Qls_arch.Device.t ->
    Qls_circuit.Circuit.t ->
    Qls_layout.Transpiled.t;
}

let run_verified r ?initial device circuit =
  let transpiled = r.route ?initial device circuit in
  let report = Qls_layout.Verifier.check_exn transpiled in
  (transpiled, report)

let swap_count r ?initial device circuit =
  let _, report = run_verified r ?initial device circuit in
  report.Qls_layout.Verifier.swap_count
