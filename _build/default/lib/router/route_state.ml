module Circuit = Qls_circuit.Circuit
module Gate = Qls_circuit.Gate
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled

type t = {
  device : Device.t;
  source : Circuit.t;
  dag : Dag.t;
  initial : Mapping.t;
  mutable mapping : Mapping.t;
  mutable ops_rev : Transpiled.op list;
  indeg : int array;          (* remaining unexecuted predecessors per DAG vertex *)
  mutable front : int list;   (* vertices with indeg 0, not yet emitted *)
  mutable emitted : int;      (* two-qubit gates emitted *)
  mutable n_swaps : int;
  pending_1q : int list array; (* per program qubit: 1q gate indices, ascending *)
}

let create ~device ~source ~initial =
  if Mapping.n_program initial <> Circuit.n_qubits source then
    invalid_arg "Route_state.create: mapping size mismatch";
  if Mapping.n_physical initial <> Device.n_qubits device then
    invalid_arg "Route_state.create: device size mismatch";
  let dag = Dag.of_circuit source in
  let n = Dag.n_gates dag in
  let indeg = Array.init n (fun v -> Dag.in_degree dag v) in
  let front = Dag.front_layer dag in
  let pending_1q = Array.make (max 1 (Circuit.n_qubits source)) [] in
  Array.iteri
    (fun i g ->
      match g with
      | Gate.G1 { q; _ } -> pending_1q.(q) <- i :: pending_1q.(q)
      | Gate.G2 _ -> ())
    (Circuit.gates source);
  Array.iteri (fun q l -> pending_1q.(q) <- List.rev l) pending_1q;
  {
    device;
    source;
    dag;
    initial;
    mapping = initial;
    ops_rev = [];
    indeg;
    front;
    emitted = 0;
    n_swaps = 0;
    pending_1q;
  }

let device t = t.device
let dag t = t.dag
let mapping t = t.mapping
let front t = t.front
let done_count t = t.emitted
let remaining t = Dag.n_gates t.dag - t.emitted
let finished t = remaining t = 0

let gate_distance t v =
  let a, b = Dag.pair t.dag v in
  Device.distance t.device (Mapping.phys t.mapping a) (Mapping.phys t.mapping b)

let executable t v = gate_distance t v = 1

(* Emit the pending single-qubit gates on qubit [q] that precede source
   position [before]. *)
let flush_1q t q ~before =
  let rec go = function
    | i :: rest when i < before ->
        t.ops_rev <- Transpiled.Gate i :: t.ops_rev;
        go rest
    | rest -> rest
  in
  t.pending_1q.(q) <- go t.pending_1q.(q)

let emit_gate t v =
  let a, b = Dag.pair t.dag v in
  let ci = Dag.circuit_index t.dag v in
  flush_1q t a ~before:ci;
  flush_1q t b ~before:ci;
  t.ops_rev <- Transpiled.Gate ci :: t.ops_rev;
  t.emitted <- t.emitted + 1;
  List.iter
    (fun w ->
      t.indeg.(w) <- t.indeg.(w) - 1;
      if t.indeg.(w) = 0 then t.front <- w :: t.front)
    (Dag.successors t.dag v)

let advance t =
  let emitted_total = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let exec, blocked = List.partition (fun v -> executable t v) t.front in
    if exec <> [] then begin
      (* Keep deterministic order: lower DAG index first. *)
      let exec = List.sort compare exec in
      t.front <- blocked;
      List.iter (fun v -> emit_gate t v) exec;
      emitted_total := !emitted_total + List.length exec;
      progress := true
    end
  done;
  !emitted_total

let apply_swap t p p' =
  if not (Device.coupled t.device p p') then
    invalid_arg
      (Printf.sprintf "Route_state.apply_swap: (%d,%d) is not a coupler" p p');
  t.mapping <- Mapping.swap_physical t.mapping p p';
  t.n_swaps <- t.n_swaps + 1;
  t.ops_rev <- Transpiled.Swap (p, p') :: t.ops_rev

let swap_count t = t.n_swaps

let force_route_first t =
  match List.sort compare t.front with
  | [] -> ()
  | v :: _ -> (
      let a, b = Dag.pair t.dag v in
      let pa = Mapping.phys t.mapping a and pb = Mapping.phys t.mapping b in
      match Qls_graph.Bfs.path (Device.graph t.device) pa pb with
      | None | Some [] | Some [ _ ] -> ()
      | Some path ->
          (* Walk qubit [a] along the path until adjacent to [b]. *)
          let rec go = function
            | p :: p' :: (_ :: _ as rest) ->
                apply_swap t p p';
                go (p' :: rest)
            | _ -> ()
          in
          go path)

let swap_candidates t =
  let module IS = Set.Make (Int) in
  let phys_front =
    List.fold_left
      (fun acc v ->
        let a, b = Dag.pair t.dag v in
        IS.add (Mapping.phys t.mapping a) (IS.add (Mapping.phys t.mapping b) acc))
      IS.empty t.front
  in
  List.filter
    (fun (p, p') -> IS.mem p phys_front || IS.mem p' phys_front)
    (Device.edges t.device)

let extended_set t ~size =
  (* Breadth-first through successors of the front layer, skipping
     already-emitted vertices; nearer successors first, capped at [size]. *)
  let module IS = Set.Make (Int) in
  let seen = ref (IS.of_list t.front) in
  let out = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  List.iter (fun v -> Queue.add v queue) (List.sort compare t.front);
  while !count < size && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if !count < size && not (IS.mem w !seen) then begin
          seen := IS.add w !seen;
          out := w :: !out;
          incr count;
          Queue.add w queue
        end)
      (Dag.successors t.dag v)
  done;
  List.rev !out

let remaining_layers t ~max_layers =
  let indeg = Array.copy t.indeg in
  let layers = ref [] in
  let current = ref (List.sort compare t.front) in
  let n_layers = ref 0 in
  while !current <> [] && !n_layers < max_layers do
    layers := !current :: !layers;
    incr n_layers;
    let next = ref [] in
    List.iter
      (fun v ->
        List.iter
          (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then next := w :: !next)
          (Dag.successors t.dag v))
      !current;
    current := List.sort compare !next
  done;
  List.rev !layers

let front_pairs_physical t =
  List.map
    (fun v ->
      let a, b = Dag.pair t.dag v in
      (Mapping.phys t.mapping a, Mapping.phys t.mapping b))
    t.front

let snapshot_mapping t = t.mapping

let ops_so_far t = List.rev t.ops_rev

let finish t =
  if not (finished t) then
    invalid_arg "Route_state.finish: two-qubit gates remain";
  Array.iteri
    (fun q pending ->
      ignore q;
      List.iter (fun i -> t.ops_rev <- Transpiled.Gate i :: t.ops_rev) pending)
    t.pending_1q;
  Array.iteri (fun q _ -> t.pending_1q.(q) <- []) t.pending_1q;
  Transpiled.create ~source:t.source ~device:t.device ~initial:t.initial
    (List.rev t.ops_rev)
