(** OLSQ2-style SAT formulation of optimal layout synthesis.

    This is the reproduction's closest analogue of the paper's §IV-A
    verifier: like OLSQ2 (Lin et al., DAC 2023), it encodes the
    transition form [C0·T0·C1·…·Tk-1·Ck] into propositional clauses and
    gives them to a CDCL SAT solver ({!Qls_sat.Solver}); iterating over
    the SWAP bound [k] yields the provable optimum.

    Encoding for a bound [k], blocks [t ∈ 0..k]:
    - [x(q,p,t)] — program qubit [q] sits on physical qubit [p] during
      block [t] (exactly-one per [(q,t)], at-most-one per [(p,t)]);
    - [b(g,t)] — gate [g] executes in block [t] (exactly-one per [g];
      predecessors in the dependency DAG must land in an earlier-or-equal
      block);
    - adjacency — [b(g,t) ∧ x(a,p,t)] forces [x(b,p',t)] for some
      neighbour [p'] of [p];
    - [s(e,t)] — transition [t] applies the SWAP on coupler [e], or the
      distinguished "no swap" option (exactly-one per [t]); frame clauses
      carry every qubit's position from block [t] to [t+1] accordingly.

    Exponential like every complete method — intended for the §IV-A
    regime, and cross-validated in the test suite against
    {!Qls_router.Exact} and the brute-force oracle. *)

type verdict =
  | Feasible of Qls_layout.Transpiled.t
      (** witness decoded from the SAT model and re-verified *)
  | Infeasible  (** UNSAT: no solution within the SWAP bound *)
  | Unknown  (** conflict budget exhausted *)

val check :
  ?conflict_budget:int ->
  swaps:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  verdict
(** Decide "executable with at most [swaps] SWAPs" by SAT (default
    budget: 2 million conflicts).
    @raise Invalid_argument if [swaps < 0] or the circuit has more
    qubits than the device. *)

type optimum =
  | Optimal of { swaps : int; witness : Qls_layout.Transpiled.t }
  | Unknown_above of { refuted_below : int }

val minimum_swaps :
  ?max_swaps:int ->
  ?conflict_budget:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  optimum
(** Iterative deepening over the SWAP bound (default [max_swaps] 8). *)
