module Solver = Qls_sat.Solver
module Graph = Qls_graph.Graph
module Circuit = Qls_circuit.Circuit
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier

type verdict = Feasible of Transpiled.t | Infeasible | Unknown

type optimum =
  | Optimal of { swaps : int; witness : Transpiled.t }
  | Unknown_above of { refuted_below : int }

(* Variable numbering for one bound [k]. *)
type vars = {
  n_prog : int;
  n_phys : int;
  n_gates : int;
  n_edges : int;
  k : int;
}

let x vars q p t =
  1 + (((t * vars.n_prog) + q) * vars.n_phys) + p

let n_x vars = vars.n_prog * vars.n_phys * (vars.k + 1)

let b vars g t = 1 + n_x vars + (g * (vars.k + 1)) + t
let n_b vars = vars.n_gates * (vars.k + 1)

(* Transition choice: edge index e in [0, n_edges), or n_edges = none. *)
let s vars e t = 1 + n_x vars + n_b vars + (t * (vars.n_edges + 1)) + e
let n_s vars = max 0 (vars.k * (vars.n_edges + 1))
let total_vars vars = n_x vars + n_b vars + n_s vars

let encode ~vars ~device ~dag solver =
  let { n_prog; n_phys; n_gates; n_edges; k } = vars in
  let add = Solver.add_clause solver in
  (* 1. each program qubit occupies exactly one position per block *)
  for t = 0 to k do
    for q = 0 to n_prog - 1 do
      add (List.init n_phys (fun p -> x vars q p t));
      for p = 0 to n_phys - 1 do
        for p' = p + 1 to n_phys - 1 do
          add [ -x vars q p t; -x vars q p' t ]
        done
      done
    done;
    (* 2. injectivity: a position holds at most one program qubit *)
    for p = 0 to n_phys - 1 do
      for q = 0 to n_prog - 1 do
        for q' = q + 1 to n_prog - 1 do
          add [ -x vars q p t; -x vars q' p t ]
        done
      done
    done
  done;
  (* 3. each gate executes in exactly one block *)
  for g = 0 to n_gates - 1 do
    add (List.init (k + 1) (fun t -> b vars g t));
    for t = 0 to k do
      for t' = t + 1 to k do
        add [ -b vars g t; -b vars g t' ]
      done
    done;
    (* dependencies: predecessors in an earlier-or-equal block *)
    List.iter
      (fun g' ->
        for t = 0 to k do
          add (-b vars g t :: List.init (t + 1) (fun t' -> b vars g' t'))
        done)
      (Dag.predecessors dag g)
  done;
  (* 4. adjacency: a gate's qubits are coupled during its block *)
  for g = 0 to n_gates - 1 do
    let a, bq = Dag.pair dag g in
    for t = 0 to k do
      for p = 0 to n_phys - 1 do
        add
          (-b vars g t :: -x vars a p t
          :: List.map (fun p' -> x vars bq p' t) (Device.neighbors device p))
      done
    done
  done;
  (* 5. transitions *)
  let edges = Array.of_list (Device.edges device) in
  for t = 0 to k - 1 do
    (* exactly one choice (an edge, or none = index n_edges) *)
    add (List.init (n_edges + 1) (fun e -> s vars e t));
    for e = 0 to n_edges do
      for e' = e + 1 to n_edges do
        add [ -s vars e t; -s vars e' t ]
      done
    done;
    for e = 0 to n_edges - 1 do
      let u, v = edges.(e) in
      for q = 0 to n_prog - 1 do
        for p = 0 to n_phys - 1 do
          let dest = if p = u then v else if p = v then u else p in
          add [ -s vars e t; -x vars q p t; x vars q dest (t + 1) ]
        done
      done
    done;
    (* none: frame axioms *)
    for q = 0 to n_prog - 1 do
      for p = 0 to n_phys - 1 do
        add [ -s vars n_edges t; -x vars q p t; x vars q p (t + 1) ]
      done
    done
  done

let decode ~vars ~device ~dag ~circuit solver =
  let { n_prog; n_phys; n_gates; n_edges; k } = vars in
  let edges = Array.of_list (Device.edges device) in
  (* initial mapping from block 0 *)
  let placement = Array.make n_prog (-1) in
  for q = 0 to n_prog - 1 do
    for p = 0 to n_phys - 1 do
      if Solver.value solver (x vars q p 0) then placement.(q) <- p
    done
  done;
  let initial = Mapping.of_array ~n_physical:n_phys placement in
  (* gate blocks *)
  let block_of = Array.make n_gates 0 in
  for g = 0 to n_gates - 1 do
    for t = 0 to k do
      if Solver.value solver (b vars g t) then block_of.(g) <- t
    done
  done;
  (* single-qubit gate re-attachment, as in Route_state *)
  let pending_1q = Array.make (max 1 n_prog) [] in
  Array.iteri
    (fun i g ->
      match g with
      | Qls_circuit.Gate.G1 { q; _ } -> pending_1q.(q) <- i :: pending_1q.(q)
      | Qls_circuit.Gate.G2 _ -> ())
    (Circuit.gates circuit);
  Array.iteri (fun q l -> pending_1q.(q) <- List.rev l) pending_1q;
  let ops = ref [] in
  let flush_1q q ~before =
    let rec go = function
      | i :: rest when i < before ->
          ops := Transpiled.Gate i :: !ops;
          go rest
      | rest -> rest
    in
    pending_1q.(q) <- go pending_1q.(q)
  in
  for t = 0 to k do
    for g = 0 to n_gates - 1 do
      if block_of.(g) = t then begin
        let a, bq = Dag.pair dag g in
        let ci = Dag.circuit_index dag g in
        flush_1q a ~before:ci;
        flush_1q bq ~before:ci;
        ops := Transpiled.Gate ci :: !ops
      end
    done;
    if t < k then
      for e = 0 to n_edges - 1 do
        if Solver.value solver (s vars e t) then begin
          let u, v = edges.(e) in
          ops := Transpiled.Swap (u, v) :: !ops
        end
      done
  done;
  Array.iter (List.iter (fun i -> ops := Transpiled.Gate i :: !ops)) pending_1q;
  let witness =
    Transpiled.create ~source:circuit ~device ~initial (List.rev !ops)
  in
  ignore (Verifier.check_exn witness);
  witness

let check ?(conflict_budget = 2_000_000) ~swaps device circuit =
  if swaps < 0 then invalid_arg "Olsq.check: negative swap count";
  if Circuit.n_qubits circuit > Device.n_qubits device then
    invalid_arg "Olsq.check: circuit larger than device";
  let dag = Dag.of_circuit circuit in
  let vars =
    {
      n_prog = Circuit.n_qubits circuit;
      n_phys = Device.n_qubits device;
      n_gates = Dag.n_gates dag;
      n_edges = Device.n_edges device;
      k = swaps;
    }
  in
  if vars.n_gates = 0 then begin
    (* no two-qubit gates: emit all 1q gates under the identity mapping *)
    let initial =
      Mapping.identity ~n_program:vars.n_prog ~n_physical:vars.n_phys
    in
    let ops =
      List.init (Circuit.length circuit) (fun i -> Transpiled.Gate i)
    in
    let witness = Transpiled.create ~source:circuit ~device ~initial ops in
    Feasible witness
  end
  else if vars.n_prog = 0 then Infeasible
  else begin
    let solver = Solver.create (total_vars vars) in
    encode ~vars ~device ~dag solver;
    match Solver.solve ~conflict_budget solver with
    | Solver.Sat -> Feasible (decode ~vars ~device ~dag ~circuit solver)
    | Solver.Unsat -> Infeasible
    | Solver.Unknown -> Unknown
  end

let minimum_swaps ?(max_swaps = 8) ?conflict_budget device circuit =
  let rec go k =
    if k > max_swaps then Unknown_above { refuted_below = k }
    else
      match check ?conflict_budget ~swaps:k device circuit with
      | Feasible witness ->
          Optimal { swaps = Transpiled.swap_count witness; witness }
      | Infeasible -> go (k + 1)
      | Unknown -> Unknown_above { refuted_below = k }
  in
  go 0
