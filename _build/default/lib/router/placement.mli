(** Initial-mapping (placement) strategies.

    A placement maps program qubits to physical qubits before routing
    starts. QUEKO-class benchmarks are solved entirely at this stage
    (subgraph isomorphism); QUBIKOS benchmarks are constructed so that no
    placement avoids SWAPs (paper §III-C), making the routing stage — and
    hence this separation — observable. *)

val random :
  Qls_graph.Rng.t -> Qls_arch.Device.t -> Qls_circuit.Circuit.t -> Qls_layout.Mapping.t
(** Uniform random injective placement. *)

val identity : Qls_arch.Device.t -> Qls_circuit.Circuit.t -> Qls_layout.Mapping.t
(** Program qubit [q] on physical qubit [q]. *)

val vf2 :
  ?node_limit:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Mapping.t option
(** SWAP-free placement via subgraph monomorphism of the whole interaction
    graph, when one exists. This solves every QUEKO instance outright. *)

val degree_greedy :
  Qls_graph.Rng.t -> Qls_arch.Device.t -> Qls_circuit.Circuit.t -> Qls_layout.Mapping.t
(** Interaction-degree-driven greedy placement: program qubits in
    decreasing interaction degree are placed on the free physical qubit
    that minimises summed distance to already-placed interaction partners
    (ties broken by physical degree then uniformly). A standard
    light-weight placement used as ML-QLS's coarse-level seed. *)

val spread_cost :
  Qls_arch.Device.t -> Qls_circuit.Circuit.t -> Qls_layout.Mapping.t -> int
(** Sum over interaction edges of [(distance - 1)] under the mapping — 0
    iff the placement is SWAP-free for the whole circuit. Used to compare
    placements. *)
