lib/router/exact.mli: Qls_arch Qls_circuit Qls_layout Router
