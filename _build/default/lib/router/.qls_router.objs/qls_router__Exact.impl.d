lib/router/exact.ml: Array Fun Hashtbl List Printf Qls_arch Qls_circuit Qls_graph Qls_layout Router
