lib/router/sabre.mli: Qls_arch Qls_circuit Qls_layout Router
