lib/router/mlqls.mli: Qls_arch Qls_circuit Qls_layout Router Sabre
