lib/router/router.mli: Qls_arch Qls_circuit Qls_layout
