lib/router/registry.mli: Router
