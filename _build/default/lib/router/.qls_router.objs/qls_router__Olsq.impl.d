lib/router/olsq.ml: Array List Qls_arch Qls_circuit Qls_graph Qls_layout Qls_sat
