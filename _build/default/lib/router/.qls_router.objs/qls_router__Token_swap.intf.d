lib/router/token_swap.mli: Qls_arch Qls_layout
