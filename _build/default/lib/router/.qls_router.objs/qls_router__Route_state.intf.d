lib/router/route_state.mli: Qls_arch Qls_circuit Qls_layout
