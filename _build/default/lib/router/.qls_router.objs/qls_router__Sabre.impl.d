lib/router/sabre.ml: Array Float List Placement Qls_arch Qls_circuit Qls_graph Qls_layout Route_state Router
