lib/router/placement.ml: Array Fun List Qls_arch Qls_circuit Qls_graph Qls_layout
