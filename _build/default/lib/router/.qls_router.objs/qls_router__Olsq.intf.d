lib/router/olsq.mli: Qls_arch Qls_circuit Qls_layout
