lib/router/transition_router.ml: Array List Placement Qls_arch Qls_circuit Qls_graph Qls_layout Route_state Router Token_swap
