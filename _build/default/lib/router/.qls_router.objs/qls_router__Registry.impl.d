lib/router/registry.ml: Astar_router Exact Mlqls Olsq Printf Router Sabre Tket_router Transition_router
