lib/router/mlqls.ml: Array Fun Hashtbl List Option Qls_arch Qls_circuit Qls_graph Qls_layout Router Sabre
