lib/router/token_swap.ml: Array Hashtbl List Printf Qls_arch Qls_graph Qls_layout Queue String
