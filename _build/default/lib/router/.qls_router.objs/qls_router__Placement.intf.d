lib/router/placement.mli: Qls_arch Qls_circuit Qls_graph Qls_layout
