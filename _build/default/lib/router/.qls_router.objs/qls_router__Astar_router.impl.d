lib/router/astar_router.ml: Array Bytes Char Hashtbl Int List Option Placement Qls_arch Qls_circuit Qls_graph Qls_layout Route_state Router Set
