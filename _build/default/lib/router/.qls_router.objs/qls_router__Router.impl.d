lib/router/router.ml: Qls_arch Qls_circuit Qls_layout
