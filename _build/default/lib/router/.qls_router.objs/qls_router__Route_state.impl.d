lib/router/route_state.ml: Array Int List Printf Qls_arch Qls_circuit Qls_graph Qls_layout Queue Set
