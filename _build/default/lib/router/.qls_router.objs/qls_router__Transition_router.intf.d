lib/router/transition_router.mli: Qls_arch Qls_circuit Qls_layout Router
