(** Common interface for layout-synthesis tools.

    A router consumes a device and a circuit and produces a verified-shape
    {!Qls_layout.Transpiled.t}. Routers accept an optional externally
    chosen initial mapping: the paper (§IV-C) uses this mode to evaluate
    the routing stage in isolation by supplying the known-optimal initial
    mapping of a QUBIKOS circuit. *)

type t = {
  name : string;
  route :
    ?initial:Qls_layout.Mapping.t ->
    Qls_arch.Device.t ->
    Qls_circuit.Circuit.t ->
    Qls_layout.Transpiled.t;
}
(** A named routing tool. *)

val run_verified :
  t ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t * Qls_layout.Verifier.report
(** Route and {!Qls_layout.Verifier.check_exn} the result; every
    experiment in this repository goes through this entry point.
    @raise Failure if the router produced an invalid result. *)

val swap_count :
  t ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  int
(** Convenience: the SWAP count of a verified run. *)
