(** Name-indexed registry of the routing tools.

    The four evaluated tools (paper §IV-B) are ["sabre"] (LightSABRE),
    ["tket"], ["qmap"] and ["mlqls"]; ["sabre-decay"] is the case-study
    variant (§IV-C), ["transition"] a Childs-style token-swapping router
    (an extra baseline), and ["exact"] the optimality prover (§IV-A). *)

val paper_tools : ?sabre_trials:int -> ?seed:int -> unit -> Router.t list
(** The four heuristic tools in paper order: SABRE, ML-QLS, QMAP, t|ket⟩.
    [sabre_trials] (default 20; the paper uses 1000) applies to SABRE
    only, matching the paper's setup. *)

val by_name : ?sabre_trials:int -> ?seed:int -> string -> Router.t option
(** Look a tool up by name (see above for the known names). *)

val names : string list
(** All registered names. *)
