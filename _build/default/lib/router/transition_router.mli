(** A transition-based router (after Childs, Schoute & Unsal 2019).

    The circuit is consumed slice by slice: for each blocked front layer,
    choose a coupler for every blocked gate (greedily, nearest free
    coupler first), then {!Token_swap.route} the mapping into one where
    all of them are satisfied, and execute the whole slice.

    This is the algorithmic skeleton behind OLSQ2's transition encoding
    and t|ket⟩'s permutation stage, included as a fifth baseline beyond
    the paper's four tools: it makes globally coherent moves per slice but
    pays for ignoring everything past the current slice. *)

type options = {
  seed : int;  (** tie-breaking stream *)
  vf2_node_limit : int;  (** budget for the initial placement try *)
}

val default_options : options
(** Seed 0, VF2 limit 200k. *)

val route :
  ?options:options ->
  ?initial:Qls_layout.Mapping.t ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  Qls_layout.Transpiled.t
(** Run the router. Initial placement: VF2 when the circuit is SWAP-free,
    else interaction-degree greedy. *)

val router : ?options:options -> unit -> Router.t
(** Package as ["transition"]. *)
