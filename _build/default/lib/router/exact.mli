(** Exact (provably optimal) SWAP-count solver — the OLSQ2 substitute.

    OLSQ2 proves optimality by SAT-solving a transition-based encoding:
    a transpiled circuit with [k] SWAPs is [C0·T0·C1·...·Tk-1·Ck], so one
    asks whether gates can be assigned to blocks and qubits to initial
    positions such that every gate is executable in its block. This module
    performs a complete search over the same space without an SMT solver:

    - {b outer loop} — depth-first enumeration of the SWAP edge sequence
      [T0..Tk-1] over the device couplers, maintaining the cumulative
      physical permutations [σ_i];
    - {b inner loop} — gates in program order (a topological order of the
      dependency DAG); each gate's {e block label} is forced to the
      earliest feasible block (a canonical form: for a fixed placement,
      pushing any gate to the earliest block where its constraint holds
      preserves feasibility, so only greedy labelings need exploring);
      placement of a program qubit is branched at its first two-qubit
      gate, over exactly the physical positions admitting some feasible
      block.

    Feasibility of [k] SWAPs is monotone (a trailing SWAP can always be
    appended), so refuting [k] refutes every smaller count, and the
    optimality proof for a QUBIKOS circuit with designed count [n] is:
    [check ~swaps:(n-1) = Infeasible] plus the designed witness.

    The search is exponential; it is intended for the paper's §IV-A
    regime (≤ 30 two-qubit gates, ≤ 16 physical qubits, [k <= 4]). All
    budget exhaustion is reported honestly as [Unknown], never guessed. *)

type verdict =
  | Feasible of Qls_layout.Transpiled.t
      (** a verified witness using at most the given SWAP count *)
  | Infeasible  (** proven: no solution with the given SWAP count exists *)
  | Unknown  (** node budget exhausted before a proof either way *)

val check :
  ?node_budget:int ->
  swaps:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  verdict
(** [check ~swaps:k device c] decides whether [c] can be executed on
    [device] with at most [k] inserted SWAPs (over all initial mappings).
    Default budget: 50 million search nodes.
    @raise Invalid_argument if [swaps < 0] or the circuit has more qubits
    than the device. *)

type optimum =
  | Optimal of { swaps : int; witness : Qls_layout.Transpiled.t }
  | Unknown_above of { refuted_below : int }
      (** every count [< refuted_below] is proven infeasible; the search
          ran out of budget or [max_swaps] above that *)

val minimum_swaps :
  ?max_swaps:int ->
  ?node_budget:int ->
  Qls_arch.Device.t ->
  Qls_circuit.Circuit.t ->
  optimum
(** Iterative deepening over the SWAP count from 0 up to [max_swaps]
    (default 8). *)

val router : ?max_swaps:int -> ?node_budget:int -> unit -> Router.t
(** Package as ["exact"]; for use on small instances in tests.
    @raise Failure when the search cannot prove an optimum in budget. *)
