(** Token swapping on coupling graphs.

    Given a device and a target relocation of program qubits, produce a
    SWAP sequence realising it. Token swapping is the permutation-routing
    core of several QLS approaches: t|ket⟩ ships a token-swapping stage,
    and transition-based routers (Childs, Schoute & Unsal 2019; also the
    spirit of OLSQ2's transitions) alternate "choose a mapping for the
    next slice" with "token-swap into it". {!Transition_router} builds on
    this module.

    Two complete algorithms are provided:

    - {!route}: spanning-tree token sorting — peel a leaf of a BFS
      spanning tree, walk the token destined for it home, recurse on the
      rest. O(n²) swaps worst case, simple and total on any connected
      graph; a greedy pass first applies every {e happy swap} (both
      tokens get strictly closer to their destinations), which
      substantially shortens typical sequences.
    - {!optimal}: breadth-first search over permutations — exponential,
      for small instances and for cross-checking {!route} in tests. *)

type target =
  | Fixed of int  (** this token must end on the given physical qubit *)
  | Free  (** don't-care: the token may end anywhere *)

val route :
  Qls_arch.Device.t -> current:Qls_layout.Mapping.t -> target:(int -> target) ->
  (int * int) list
(** [route device ~current ~target] returns SWAPs (physical pairs, in
    order) after which every program qubit [q] with [target q = Fixed p]
    sits on [p]. Free qubits and empty slots absorb the remaining
    positions.
    @raise Invalid_argument if two qubits demand the same position, or a
    demanded position is out of range. *)

val apply :
  Qls_arch.Device.t -> Qls_layout.Mapping.t -> (int * int) list ->
  Qls_layout.Mapping.t
(** Fold the SWAP sequence over a mapping (checking each pair is a
    coupler).
    @raise Invalid_argument on a non-coupler pair. *)

val optimal :
  ?max_swaps:int -> Qls_arch.Device.t -> current:Qls_layout.Mapping.t ->
  target:(int -> target) -> (int * int) list option
(** Minimum-length SWAP sequence by BFS over reachable mappings, or
    [None] if [max_swaps] (default 10) is exceeded. Exponential — tests
    and tiny instances only. *)

val count_misplaced :
  Qls_layout.Mapping.t -> target:(int -> target) -> int
(** Number of program qubits not yet on their [Fixed] position. *)
