let sabre ~trials ~seed =
  Sabre.router
    ~options:{ Sabre.default_options with trials; seed }
    ()

let sabre_decay ~trials ~seed =
  Sabre.router
    ~options:
      { Sabre.default_options with trials; seed; lookahead_decay = Some 0.8 }
    ()

let tket ~seed = Tket_router.router ~options:{ Tket_router.default_options with seed } ()
let qmap ~seed = Astar_router.router ~options:{ Astar_router.default_options with seed } ()

let transition ~seed =
  Transition_router.router
    ~options:{ Transition_router.default_options with seed }
    ()

let mlqls ~seed =
  Mlqls.router
    ~options:
      {
        Mlqls.default_options with
        seed;
        routing = { (Mlqls.default_options.Mlqls.routing) with seed };
      }
    ()

let paper_tools ?(sabre_trials = 20) ?(seed = 0) () =
  [
    sabre ~trials:sabre_trials ~seed;
    mlqls ~seed;
    qmap ~seed;
    tket ~seed;
  ]

let names =
  [ "sabre"; "sabre-decay"; "mlqls"; "qmap"; "tket"; "transition"; "exact";
    "olsq" ]

let by_name ?(sabre_trials = 20) ?(seed = 0) name =
  match name with
  | "sabre" | "lightsabre" -> Some (sabre ~trials:sabre_trials ~seed)
  | "sabre-decay" -> Some (sabre_decay ~trials:sabre_trials ~seed)
  | "mlqls" | "ml-qls" -> Some (mlqls ~seed)
  | "qmap" -> Some (qmap ~seed)
  | "tket" -> Some (tket ~seed)
  | "transition" -> Some (transition ~seed)
  | "exact" -> Some (Exact.router ())
  | "olsq" ->
      Some
        {
          Router.name = "olsq";
          route =
            (fun ?initial device circuit ->
              ignore initial;
              match Olsq.minimum_swaps device circuit with
              | Olsq.Optimal { witness; _ } -> witness
              | Olsq.Unknown_above { refuted_below } ->
                  failwith
                    (Printf.sprintf
                       "olsq: budget exhausted (only refuted < %d swaps)"
                       refuted_below));
        }
  | _ -> None
