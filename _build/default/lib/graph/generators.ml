let path n =
  Graph.create n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need at least 3 vertices";
  Graph.create n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let grid rows cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.create (rows * cols) !edges

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create n !edges

let star n =
  if n < 1 then invalid_arg "Generators.star: need at least 1 vertex";
  Graph.create n (List.init (n - 1) (fun i -> (0, i + 1)))

let random_connected rng ~n ~extra_edges =
  if n < 1 then invalid_arg "Generators.random_connected: need >= 1 vertex";
  (* Random attachment tree: vertex i (> 0) attaches to a uniform earlier
     vertex, over a random vertex relabelling. *)
  let relabel = Rng.permutation rng n in
  let tree =
    List.init (max 0 (n - 1)) (fun i ->
        let v = i + 1 in
        (relabel.(Rng.int rng v), relabel.(v)))
  in
  let g = Graph.create n tree in
  let non_edges = Array.of_list (Graph.complement_edges g) in
  Rng.shuffle rng non_edges;
  let k = min extra_edges (Array.length non_edges) in
  let extra = Array.to_list (Array.sub non_edges 0 k) in
  Graph.add_edges g extra

let gnp rng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.create n !edges
