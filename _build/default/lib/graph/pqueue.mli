(** Minimal mutable binary min-heap priority queue.

    Used by the A*-based router and the exact solver. Priorities are
    floats; entries with equal priority pop in insertion order (a
    monotonically increasing tiebreak counter is kept internally), which
    keeps searches deterministic. *)

type 'a t
(** A min-priority queue of ['a]. *)

val create : unit -> 'a t
(** An empty queue. *)

val is_empty : 'a t -> bool
(** Whether the queue holds no elements. *)

val size : 'a t -> int
(** Number of queued elements. *)

val push : 'a t -> float -> 'a -> unit
(** [push q prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry, FIFO among ties. *)

val clear : 'a t -> unit
(** Drop all elements. *)
