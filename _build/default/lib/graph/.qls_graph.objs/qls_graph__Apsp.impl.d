lib/graph/apsp.ml: Array Bfs Graph
