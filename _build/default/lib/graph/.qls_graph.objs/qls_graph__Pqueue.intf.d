lib/graph/pqueue.mli:
