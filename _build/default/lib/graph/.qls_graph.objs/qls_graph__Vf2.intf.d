lib/graph/vf2.mli: Graph
