lib/graph/rng.mli:
