lib/graph/vf2.ml: Array Fun Graph List Option
