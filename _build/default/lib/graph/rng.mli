(** Deterministic splittable pseudo-random number generator.

    All stochastic components of the library (benchmark generation, router
    tie-breaking, trial seeds) draw from this generator rather than the
    global {!Stdlib.Random} state, so that every experiment is reproducible
    from a single integer seed, independent of evaluation order and of the
    OCaml runtime version.

    The implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014),
    which is the standard seeding generator of the Java and Rust ecosystems:
    a 64-bit state advanced by a Weyl sequence and finalised by a
    variant of the MurmurHash3 finaliser. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] creates a fresh generator from an integer seed. Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. Use this to
    hand child components their own generators without coupling their
    consumption patterns. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a uniform boolean. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] is a uniformly chosen element of [xs].
    @raise Invalid_argument if [xs] is empty. *)

val pick_array : t -> 'a array -> 'a
(** [pick_array t xs] is a uniformly chosen element of [xs].
    @raise Invalid_argument if [xs] is empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t xs] permutes [xs] in place with a Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** [shuffle_list t xs] is a uniformly shuffled copy of [xs]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0 .. n-1]. *)
