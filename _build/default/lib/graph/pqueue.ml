type 'a entry = { prio : float; stamp : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_stamp : int;
}

let create () = { heap = [||]; size = 0; next_stamp = 0 }
let is_empty q = q.size = 0
let size q = q.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.stamp < b.stamp)

let grow q entry =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let heap = Array.make ncap entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let push q prio value =
  let entry = { prio; stamp = q.next_stamp; value } in
  q.next_stamp <- q.next_stamp + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less q.heap.(!i) q.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.heap.(parent) in
    q.heap.(parent) <- q.heap.(!i);
    q.heap.(!i) <- tmp;
    i := parent
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
        if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = q.heap.(!smallest) in
          q.heap.(!smallest) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let clear q =
  q.heap <- [||];
  q.size <- 0
