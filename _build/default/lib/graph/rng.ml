(* SplitMix64: 64-bit splittable PRNG. Reference: Steele, Lea & Flood,
   "Fast splittable pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  (* MurmurHash3-style finaliser (the "mix13" variant used by SplitMix64). *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on 63 nonnegative bits to avoid modulo bias. The
     rejection region is at most [bound - 1] values out of 2^63, so the loop
     terminates almost immediately; a try cap keeps it total regardless. *)
  let bound64 = Int64.of_int bound in
  let max_valid = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec go tries =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    if Int64.compare r max_valid >= 0 && tries < 64 then go (tries + 1)
    else Int64.to_int (Int64.rem r bound64)
  in
  go 0

let float t bound =
  (* 53 uniform bits, scaled. *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 1L = 0

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_array: empty array";
  xs.(int t (Array.length xs))

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ :: _ -> pick_array t (Array.of_list xs)

let shuffle t xs =
  let n = Array.length xs in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let shuffle_list t xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  Array.to_list arr

let permutation t n =
  let p = Array.init n (fun i -> i) in
  shuffle t p;
  p
