(** All-pairs shortest-path distances for unweighted graphs.

    Every router in {!Qls_router} scores SWAP candidates by the physical
    distance between the qubits of pending gates, so the device distance
    matrix is computed once per device and shared. *)

type t
(** A precomputed distance matrix. *)

val compute : Graph.t -> t
(** [compute g] runs one BFS per vertex: O(n · (n + m)). Distances between
    disconnected vertices are {!unreachable}. *)

val unreachable : int
(** Sentinel distance for disconnected pairs ([max_int]). *)

val dist : t -> int -> int -> int
(** [dist t u v] is the hop distance from [u] to [v] ([0] when [u = v]). *)

val diameter : t -> int
(** Largest finite pairwise distance ([0] for graphs with [<= 1]
    vertex).
    @raise Invalid_argument if the graph is disconnected. *)

val eccentricity : t -> int -> int
(** [eccentricity t v] is the largest finite distance from [v]. *)

val n : t -> int
(** Number of vertices the matrix covers. *)
