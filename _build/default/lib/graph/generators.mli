(** Parametric graph generators used for devices and tests. *)

val path : int -> Graph.t
(** [path n] is the line graph [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the ring on [n >= 3] vertices.
    @raise Invalid_argument if [n < 3]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols] is the 2-D mesh; vertex [(r, c)] is [r * cols + c]. *)

val complete : int -> Graph.t
(** [complete n] is K_n. *)

val star : int -> Graph.t
(** [star n] is one centre (vertex 0) connected to [n - 1] leaves. *)

val random_connected : Rng.t -> n:int -> extra_edges:int -> Graph.t
(** [random_connected rng ~n ~extra_edges] is a uniform random spanning
    tree (random Prüfer-free attachment) plus [extra_edges] distinct random
    non-tree edges (fewer if the graph saturates). Always connected. *)

val gnp : Rng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n, p). Not necessarily connected. *)
