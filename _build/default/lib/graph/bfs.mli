(** Breadth-first search utilities.

    The QUBIKOS dependency-relation construction (paper §III-B) is built on
    BFS *edge orders*: visiting the edges of a section's interaction graph
    in BFS order from the special-gate endpoints guarantees that every gate
    shares a qubit with an earlier gate in the order, which is exactly the
    dependency-chain property Lemma 2 needs. *)

val distances : Graph.t -> int -> int array
(** [distances g src] is the array of BFS distances from [src];
    unreachable vertices get [max_int]. *)

val multi_source_distances : Graph.t -> int list -> int array
(** [multi_source_distances g srcs] is the pointwise minimum of
    {!distances} over the sources. Unreachable vertices get [max_int].
    @raise Invalid_argument if [srcs] is empty. *)

val order : Graph.t -> int -> int list
(** [order g src] is the list of vertices in BFS visit order from [src]
    (only the reachable ones). *)

val edge_order : Graph.t -> sources:int list -> skip:(int -> int -> bool) -> (int * int) list
(** [edge_order g ~sources ~skip] visits every edge of [g] not excluded by
    [skip] in multi-source BFS order: an edge is emitted (oriented
    [(reached_from, discovered)] or between two already-visited vertices as
    [(u, v)] with [u] visited earlier) the first time the search crosses
    it. Each non-skipped edge reachable from the sources appears exactly
    once, and every emitted edge shares an endpoint with an earlier emitted
    edge or with a source vertex — the chain property used by the QUBIKOS
    dependency construction.

    Edges in components not reachable from [sources] are omitted; the
    caller is responsible for connectivity (see
    {!Qubikos.Dependency}). *)

val path : Graph.t -> int -> int -> int list option
(** [path g u v] is a shortest path from [u] to [v] inclusive, or [None]
    if disconnected. *)
