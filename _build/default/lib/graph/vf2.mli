(** VF2 subgraph monomorphism (Cordella, Foggia, Sansone & Vento, 2004).

    QLS semantics: a circuit is executable on a device with no SWAP gates
    iff its interaction graph [H] admits a *monomorphism* into the coupling
    graph [G] — an injective vertex map under which every interaction edge
    lands on a coupling edge (non-induced: extra coupling edges are fine).

    This module is used three ways in the reproduction:
    - {!Qubikos.Certificate} proves Lemma 1 of the paper by checking that
      each generated section's interaction graph has {e no} monomorphism
      into the device;
    - the QUEKO contrast experiment solves QUEKO benchmarks outright by
      finding a monomorphism (which is exactly why QUEKO cannot measure
      SWAP optimality gaps);
    - {!Qls_router} tools use it to detect SWAP-free instances.

    The implementation is the standard VF2 state-space search with
    degree-based candidate pruning and a connectivity-first variable
    ordering. *)

type stats = { nodes_visited : int }
(** Search-effort counter for benchmarking. *)

val find :
  ?node_limit:int -> pattern:Graph.t -> target:Graph.t -> unit -> int array option
(** [find ~pattern ~target ()] is [Some f] where [f.(h) = g] maps pattern
    vertex [h] to target vertex [g], if a monomorphism exists, else
    [None]. Vertices of the pattern with degree [0] are assigned greedily
    to leftover target vertices at the end (they impose no edge
    constraints).

    [node_limit] caps the number of search-tree nodes; when exhausted the
    search raises [Exit]-free and returns [None] — use only where a missed
    embedding is acceptable (heuristics), never in the certificate.
    @raise Invalid_argument if the pattern has more vertices than the
    target. *)

val find_with_stats :
  ?node_limit:int -> pattern:Graph.t -> target:Graph.t -> unit -> int array option * stats
(** Like {!find} but also reports search effort. *)

val exists : ?node_limit:int -> pattern:Graph.t -> target:Graph.t -> unit -> bool
(** [exists ~pattern ~target ()] is [true] iff a monomorphism exists. *)

val extend :
  pattern:Graph.t -> target:Graph.t -> fixed:(int * int) list -> int array option
(** [extend ~pattern ~target ~fixed] searches for a monomorphism that
    extends the partial assignment [fixed] (pairs [(pattern_v, target_v)]).
    Used to test whether a partial placement obtained from one QUBIKOS
    section can be completed for the next (paper §III-C).
    @raise Invalid_argument on an inconsistent or out-of-range [fixed]. *)

val count : ?limit:int -> pattern:Graph.t -> target:Graph.t -> unit -> int
(** [count ~pattern ~target ()] counts monomorphisms, stopping at [limit]
    (default [max_int]). Counting all self-monomorphisms of a graph with
    [n_edges pattern = n_edges target] counts automorphisms — the paper's
    "axes of symmetry" measure for devices. *)

val is_isomorphic : Graph.t -> Graph.t -> bool
(** Graph isomorphism for same-size graphs (monomorphism + equal edge
    counts). *)
