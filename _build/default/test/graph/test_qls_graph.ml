(* Tests for the qls_graph library: RNG, graphs, BFS, APSP, priority
   queue, VF2 and generators. *)

module Rng = Qls_graph.Rng
module Graph = Qls_graph.Graph
module Bfs = Qls_graph.Bfs
module Apsp = Qls_graph.Apsp
module Pqueue = Qls_graph.Pqueue
module Vf2 = Qls_graph.Vf2
module Generators = Qls_graph.Generators

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_tests =
  [
    test_case "same seed, same stream" (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "bits64" (Rng.bits64 a) (Rng.bits64 b)
        done);
    test_case "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref true in
        for _ = 1 to 10 do
          if Rng.bits64 a <> Rng.bits64 b then same := false
        done;
        check_bool "streams differ" false !same);
    test_case "copy is independent" (fun () ->
        let a = Rng.create 7 in
        let b = Rng.copy a in
        Alcotest.(check int64) "equal next" (Rng.bits64 a) (Rng.bits64 b));
    test_case "split decorrelates" (fun () ->
        let a = Rng.create 9 in
        let b = Rng.split a in
        check_bool "split differs from parent" true (Rng.bits64 a <> Rng.bits64 b));
    test_case "int bound validation" (fun () ->
        let rng = Rng.create 0 in
        Alcotest.check_raises "zero bound"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int rng 0)));
    test_case "int respects bound" (fun () ->
        let rng = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int rng 17 in
          check_bool "in range" true (v >= 0 && v < 17)
        done);
    test_case "int bound 1 is constant" (fun () ->
        let rng = Rng.create 5 in
        for _ = 1 to 10 do
          check_int "always 0" 0 (Rng.int rng 1)
        done);
    test_case "float respects bound" (fun () ->
        let rng = Rng.create 11 in
        for _ = 1 to 1000 do
          let v = Rng.float rng 2.5 in
          check_bool "in range" true (v >= 0.0 && v < 2.5)
        done);
    test_case "pick empty rejected" (fun () ->
        let rng = Rng.create 0 in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
          (fun () -> ignore (Rng.pick rng [])));
    test_case "pick singleton" (fun () ->
        let rng = Rng.create 0 in
        check_int "only element" 99 (Rng.pick rng [ 99 ]));
    test_case "permutation is a permutation" (fun () ->
        let rng = Rng.create 13 in
        let p = Rng.permutation rng 50 in
        let sorted = Array.copy p in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "0..49" (Array.init 50 Fun.id) sorted);
    test_case "shuffle preserves multiset" (fun () ->
        let rng = Rng.create 17 in
        let xs = [| 1; 2; 2; 3; 5; 8 |] in
        let ys = Array.copy xs in
        Rng.shuffle rng ys;
        Array.sort compare ys;
        Alcotest.(check (array int)) "sorted equal" [| 1; 2; 2; 3; 5; 8 |] ys);
    test_case "bool is not constant" (fun () ->
        let rng = Rng.create 23 in
        let trues = ref 0 in
        for _ = 1 to 200 do
          if Rng.bool rng then incr trues
        done;
        check_bool "mixed" true (!trues > 50 && !trues < 150));
  ]

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let graph_tests =
  [
    test_case "create canonicalises and dedupes" (fun () ->
        let g = Graph.create 4 [ (1, 0); (0, 1); (2, 3) ] in
        check_int "edges" 2 (Graph.n_edges g);
        Alcotest.(check (list (pair int int))) "canonical" [ (0, 1); (2, 3) ]
          (Graph.edges g));
    test_case "self-loop rejected" (fun () ->
        Alcotest.check_raises "loop"
          (Invalid_argument "Graph.create: self-loop on 2") (fun () ->
            ignore (Graph.create 4 [ (2, 2) ])));
    test_case "endpoint range checked" (fun () ->
        Alcotest.check_raises "range"
          (Invalid_argument "Graph: vertex 5 outside [0, 4)") (fun () ->
            ignore (Graph.create 4 [ (1, 5) ])));
    test_case "mem_edge is symmetric" (fun () ->
        let g = Graph.create 5 [ (1, 3); (0, 4) ] in
        check_bool "1-3" true (Graph.mem_edge g 1 3);
        check_bool "3-1" true (Graph.mem_edge g 3 1);
        check_bool "0-3" false (Graph.mem_edge g 0 3);
        check_bool "self" false (Graph.mem_edge g 3 3));
    test_case "neighbors sorted" (fun () ->
        let g = Graph.create 6 [ (3, 5); (3, 0); (3, 4); (3, 1) ] in
        Alcotest.(check (list int)) "sorted" [ 0; 1; 4; 5 ] (Graph.neighbors g 3));
    test_case "degree and max_degree" (fun () ->
        let g = Generators.star 7 in
        check_int "centre" 6 (Graph.degree g 0);
        check_int "leaf" 1 (Graph.degree g 3);
        check_int "max" 6 (Graph.max_degree g));
    test_case "degree_histogram" (fun () ->
        let g = Generators.star 5 in
        Alcotest.(check (list (pair int int))) "histogram" [ (1, 4); (4, 1) ]
          (Graph.degree_histogram g));
    test_case "add and remove edges" (fun () ->
        let g = Graph.create 4 [ (0, 1) ] in
        let g2 = Graph.add_edges g [ (1, 2); (0, 1) ] in
        check_int "added one new" 2 (Graph.n_edges g2);
        let g3 = Graph.remove_edge g2 2 1 in
        check_bool "removed" false (Graph.mem_edge g3 1 2);
        check_int "size" 1 (Graph.n_edges g3));
    test_case "induced subgraph relabels" (fun () ->
        let g = Generators.cycle 5 in
        let sub, back = Graph.induced g [ 1; 2; 3 ] in
        check_int "3 vertices" 3 (Graph.n_vertices sub);
        check_int "2 edges" 2 (Graph.n_edges sub);
        Alcotest.(check (array int)) "back map" [| 1; 2; 3 |] back);
    test_case "induced rejects duplicates" (fun () ->
        let g = Generators.path 4 in
        Alcotest.check_raises "dup"
          (Invalid_argument "Graph.induced: duplicate vertex in selection")
          (fun () -> ignore (Graph.induced g [ 1; 1 ])));
    test_case "union_edges" (fun () ->
        let a = Graph.create 3 [ (0, 1) ] and b = Graph.create 4 [ (2, 3) ] in
        let u = Graph.union_edges a b in
        check_int "vertices" 4 (Graph.n_vertices u);
        check_int "edges" 2 (Graph.n_edges u));
    test_case "components of forest" (fun () ->
        let g = Graph.create 6 [ (0, 1); (2, 3) ] in
        Alcotest.(check (list (list int))) "components"
          [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ]; [ 5 ] ]
          (Graph.components g));
    test_case "component_ids consistent" (fun () ->
        let g = Graph.create 5 [ (0, 4); (1, 2) ] in
        let ids = Graph.component_ids g in
        check_bool "0 and 4 together" true (ids.(0) = ids.(4));
        check_bool "1 and 2 together" true (ids.(1) = ids.(2));
        check_bool "0 and 1 apart" true (ids.(0) <> ids.(1)));
    test_case "is_connected" (fun () ->
        check_bool "path" true (Graph.is_connected (Generators.path 5));
        check_bool "empty graph of 1" true (Graph.is_connected (Graph.empty 1));
        check_bool "two isolated" false (Graph.is_connected (Graph.empty 2)));
    test_case "relabel by permutation" (fun () ->
        let g = Generators.path 3 in
        let r = Graph.relabel g [| 2; 0; 1 |] in
        (* path 0-1-2 becomes 2-0-1 *)
        check_bool "2-0" true (Graph.mem_edge r 2 0);
        check_bool "0-1" true (Graph.mem_edge r 0 1);
        check_bool "2-1 gone" false (Graph.mem_edge r 2 1));
    test_case "relabel rejects non-permutation" (fun () ->
        let g = Generators.path 3 in
        Alcotest.check_raises "dup"
          (Invalid_argument "Graph.relabel: not a permutation") (fun () ->
            ignore (Graph.relabel g [| 0; 0; 1 |])));
    test_case "complement_edges of path3" (fun () ->
        let g = Generators.path 3 in
        Alcotest.(check (list (pair int int))) "complement" [ (0, 2) ]
          (Graph.complement_edges g));
    test_case "fold and iter agree" (fun () ->
        let g = Generators.cycle 6 in
        let count = Graph.fold_edges (fun _ _ acc -> acc + 1) g 0 in
        let count' = ref 0 in
        Graph.iter_edges (fun _ _ -> incr count') g;
        check_int "fold" 6 count;
        check_int "iter" 6 !count');
    test_case "equal is structural" (fun () ->
        let a = Graph.create 3 [ (0, 1) ] and b = Graph.create 3 [ (1, 0) ] in
        check_bool "equal" true (Graph.equal a b);
        check_bool "different n" false (Graph.equal a (Graph.create 4 [ (0, 1) ])));
    test_case "to_dot mentions all edges" (fun () ->
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        let dot = Graph.to_dot ~name:"t" (Generators.path 3) in
        check_bool "header" true (contains dot "graph t {");
        check_bool "edge 0-1" true (contains dot "0 -- 1");
        check_bool "edge 1-2" true (contains dot "1 -- 2"));
  ]

(* Property tests for Graph. *)
let graph_arb =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ","
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))
    QCheck.Gen.(
      sized (fun size ->
          let n = 2 + (size mod 14) in
          let* m = int_bound (2 * n) in
          let edge = pair (int_bound (n - 1)) (int_bound (n - 1)) in
          let* edges = list_size (return m) edge in
          return (n, List.filter (fun (u, v) -> u <> v) edges)))

let graph_props =
  [
    QCheck.Test.make ~name:"handshake: sum of degrees = 2|E|" ~count:200
      graph_arb (fun (n, edges) ->
        let g = Graph.create n edges in
        let total = ref 0 in
        for v = 0 to n - 1 do
          total := !total + Graph.degree g v
        done;
        !total = 2 * Graph.n_edges g);
    QCheck.Test.make ~name:"mem_edge agrees with edge list" ~count:200 graph_arb
      (fun (n, edges) ->
        let g = Graph.create n edges in
        List.for_all (fun (u, v) -> Graph.mem_edge g u v) (Graph.edges g)
        && List.for_all
             (fun (u, v) -> not (Graph.mem_edge g u v))
             (Graph.complement_edges g));
    QCheck.Test.make ~name:"components partition the vertex set" ~count:200
      graph_arb (fun (n, edges) ->
        let g = Graph.create n edges in
        let all = List.concat (Graph.components g) in
        List.sort compare all = List.init n Fun.id);
    QCheck.Test.make ~name:"relabel preserves isomorphism" ~count:100 graph_arb
      (fun (n, edges) ->
        let g = Graph.create n edges in
        let rng = Rng.create (Hashtbl.hash edges) in
        let perm = Rng.permutation rng n in
        Vf2.is_isomorphic g (Graph.relabel g perm));
    QCheck.Test.make ~name:"complement and edges form the complete graph"
      ~count:100 graph_arb (fun (n, edges) ->
        let g = Graph.create n edges in
        Graph.n_edges g + List.length (Graph.complement_edges g)
        = n * (n - 1) / 2);
  ]

(* ------------------------------------------------------------------ *)
(* Bfs                                                                 *)
(* ------------------------------------------------------------------ *)

let bfs_tests =
  [
    test_case "distances on a path" (fun () ->
        let d = Bfs.distances (Generators.path 5) 0 in
        Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d);
    test_case "distances mark unreachable" (fun () ->
        let g = Graph.create 3 [ (0, 1) ] in
        let d = Bfs.distances g 0 in
        check_int "unreachable" max_int d.(2));
    test_case "multi-source distances" (fun () ->
        let d = Bfs.multi_source_distances (Generators.path 5) [ 0; 4 ] in
        Alcotest.(check (array int)) "min of both" [| 0; 1; 2; 1; 0 |] d);
    test_case "multi-source rejects empty" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Bfs.multi_source_distances: no sources") (fun () ->
            ignore (Bfs.multi_source_distances (Generators.path 3) [])));
    test_case "order starts at source and covers component" (fun () ->
        let order = Bfs.order (Generators.cycle 5) 2 in
        check_int "head" 2 (List.hd order);
        check_int "length" 5 (List.length order));
    test_case "edge_order covers all reachable edges once" (fun () ->
        let g = Generators.grid 3 3 in
        let eo = Bfs.edge_order g ~sources:[ 0 ] ~skip:(fun _ _ -> false) in
        check_int "all edges" (Graph.n_edges g) (List.length eo);
        let canon (u, v) = if u < v then (u, v) else (v, u) in
        let dedup = List.sort_uniq compare (List.map canon eo) in
        check_int "unique" (Graph.n_edges g) (List.length dedup));
    test_case "edge_order respects skip" (fun () ->
        let g = Generators.path 3 in
        let eo = Bfs.edge_order g ~sources:[ 0 ]
            ~skip:(fun u v -> (min u v, max u v) = (1, 2)) in
        Alcotest.(check (list (pair int int))) "only first edge" [ (0, 1) ] eo);
    test_case "edge_order chain property" (fun () ->
        (* every emitted edge shares a vertex with an earlier edge or a
           source — the property §III-B of the paper relies on *)
        let g = Generators.grid 4 4 in
        let sources = [ 5 ] in
        let eo = Bfs.edge_order g ~sources ~skip:(fun _ _ -> false) in
        let seen = ref [ 5 ] in
        List.iter
          (fun (u, v) ->
            let ok = List.mem u !seen || List.mem v !seen in
            check_bool "chains" true ok;
            seen := u :: v :: !seen)
          eo);
    test_case "path endpoints and length" (fun () ->
        let g = Generators.grid 3 3 in
        match Bfs.path g 0 8 with
        | None -> Alcotest.fail "expected path"
        | Some p ->
            check_int "starts" 0 (List.hd p);
            check_int "ends" 8 (List.nth p (List.length p - 1));
            check_int "shortest" ((Bfs.distances g 0).(8) + 1) (List.length p));
    test_case "path in disconnected graph" (fun () ->
        let g = Graph.create 4 [ (0, 1); (2, 3) ] in
        check_bool "no path" true (Bfs.path g 0 3 = None));
    test_case "path to itself" (fun () ->
        let g = Generators.path 3 in
        Alcotest.(check (option (list int))) "trivial" (Some [ 1 ]) (Bfs.path g 1 1));
  ]

(* ------------------------------------------------------------------ *)
(* Apsp                                                                *)
(* ------------------------------------------------------------------ *)

let apsp_tests =
  [
    test_case "matches per-source BFS" (fun () ->
        let g = Generators.grid 3 4 in
        let t = Apsp.compute g in
        for src = 0 to 11 do
          let d = Bfs.distances g src in
          for dst = 0 to 11 do
            check_int "distance" d.(dst) (Apsp.dist t src dst)
          done
        done);
    test_case "diameter of cycle" (fun () ->
        check_int "cycle 8" 4 (Apsp.diameter (Apsp.compute (Generators.cycle 8))));
    test_case "diameter rejects disconnected" (fun () ->
        let t = Apsp.compute (Graph.create 3 [ (0, 1) ]) in
        Alcotest.check_raises "disconnected"
          (Invalid_argument "Apsp.diameter: graph is disconnected") (fun () ->
            ignore (Apsp.diameter t)));
    test_case "eccentricity of path ends and middle" (fun () ->
        let t = Apsp.compute (Generators.path 5) in
        check_int "end" 4 (Apsp.eccentricity t 0);
        check_int "middle" 2 (Apsp.eccentricity t 2));
    test_case "dist range checked" (fun () ->
        let t = Apsp.compute (Generators.path 3) in
        Alcotest.check_raises "range"
          (Invalid_argument "Apsp.dist: vertex out of range") (fun () ->
            ignore (Apsp.dist t 0 7)));
  ]

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let pqueue_tests =
  [
    test_case "pops in priority order" (fun () ->
        let q = Pqueue.create () in
        List.iter (fun p -> Pqueue.push q p (int_of_float p)) [ 3.; 1.; 2.; 0.5 ];
        let order = ref [] in
        let rec drain () =
          match Pqueue.pop q with
          | None -> ()
          | Some (_, v) ->
              order := v :: !order;
              drain ()
        in
        drain ();
        Alcotest.(check (list int)) "ascending" [ 0; 1; 2; 3 ] (List.rev !order));
    test_case "FIFO among ties" (fun () ->
        let q = Pqueue.create () in
        Pqueue.push q 1.0 "a";
        Pqueue.push q 1.0 "b";
        Pqueue.push q 1.0 "c";
        let pop () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
        Alcotest.(check string) "first" "a" (pop ());
        Alcotest.(check string) "second" "b" (pop ());
        Alcotest.(check string) "third" "c" (pop ()));
    test_case "size and is_empty" (fun () ->
        let q = Pqueue.create () in
        check_bool "empty" true (Pqueue.is_empty q);
        Pqueue.push q 1.0 ();
        check_int "one" 1 (Pqueue.size q);
        ignore (Pqueue.pop q);
        check_bool "empty again" true (Pqueue.is_empty q));
    test_case "clear drops everything" (fun () ->
        let q = Pqueue.create () in
        for i = 1 to 10 do
          Pqueue.push q (float_of_int i) i
        done;
        Pqueue.clear q;
        check_bool "empty" true (Pqueue.is_empty q));
  ]

let pqueue_props =
  [
    QCheck.Test.make ~name:"pqueue pops sorted" ~count:200
      QCheck.(list (float_range 0.0 100.0))
      (fun prios ->
        let q = Pqueue.create () in
        List.iter (fun p -> Pqueue.push q p p) prios;
        let rec drain acc =
          match Pqueue.pop q with
          | None -> List.rev acc
          | Some (p, _) -> drain (p :: acc)
        in
        let out = drain [] in
        out = List.sort compare prios);
  ]

(* ------------------------------------------------------------------ *)
(* Vf2                                                                 *)
(* ------------------------------------------------------------------ *)

let check_valid_monomorphism pattern target f =
  let injective =
    let seen = Hashtbl.create 16 in
    Array.for_all
      (fun m ->
        if Hashtbl.mem seen m then false
        else begin
          Hashtbl.add seen m ();
          true
        end)
      f
  in
  injective
  && Graph.fold_edges
       (fun u v ok -> ok && Graph.mem_edge target f.(u) f.(v))
       pattern true

let vf2_tests =
  [
    test_case "path embeds in grid" (fun () ->
        let pattern = Generators.path 5 and target = Generators.grid 3 3 in
        match Vf2.find ~pattern ~target () with
        | None -> Alcotest.fail "expected embedding"
        | Some f -> check_bool "valid" true (check_valid_monomorphism pattern target f));
    test_case "K1,5 does not embed in grid3x3" (fun () ->
        (* max degree of the grid is 4 — the paper's Fig. 2(c) argument *)
        check_bool "no embedding" false
          (Vf2.exists ~pattern:(Generators.star 6) ~target:(Generators.grid 3 3) ()));
    test_case "triangle does not embed in a tree" (fun () ->
        check_bool "no" false
          (Vf2.exists ~pattern:(Generators.cycle 3) ~target:(Generators.path 9) ()));
    test_case "triangle embeds in K4" (fun () ->
        check_bool "yes" true
          (Vf2.exists ~pattern:(Generators.cycle 3) ~target:(Generators.complete 4) ()));
    test_case "pattern larger than target rejected" (fun () ->
        Alcotest.check_raises "size"
          (Invalid_argument "Vf2: pattern larger than target") (fun () ->
            ignore (Vf2.exists ~pattern:(Generators.path 5) ~target:(Generators.path 3) ())));
    test_case "isolated pattern vertices are placed" (fun () ->
        let pattern = Graph.create 4 [ (0, 1) ] in
        let target = Generators.path 4 in
        match Vf2.find ~pattern ~target () with
        | None -> Alcotest.fail "expected embedding"
        | Some f ->
            check_bool "valid" true (check_valid_monomorphism pattern target f));
    test_case "automorphism counts" (fun () ->
        let count g = Vf2.count ~pattern:g ~target:g () in
        check_int "cycle 5" 10 (count (Generators.cycle 5));
        check_int "path 4" 2 (count (Generators.path 4));
        check_int "K4" 24 (count (Generators.complete 4));
        check_int "grid 3x3" 8 (count (Generators.grid 3 3)));
    test_case "count limit stops early" (fun () ->
        check_int "limited" 3
          (Vf2.count ~limit:3 ~pattern:(Generators.complete 4)
             ~target:(Generators.complete 4) ()));
    test_case "extend with consistent fixed pairs" (fun () ->
        let pattern = Generators.path 3 and target = Generators.grid 3 3 in
        match Vf2.extend ~pattern ~target ~fixed:[ (1, 4) ] with
        | None -> Alcotest.fail "expected completion"
        | Some f ->
            check_int "fixed kept" 4 f.(1);
            check_bool "valid" true (check_valid_monomorphism pattern target f));
    test_case "extend with impossible fixed pair" (fun () ->
        (* Fixing both path endpoints on non-adjacent grid corners at
           distance > 2 makes the 3-path unsatisfiable. *)
        let pattern = Generators.path 2 and target = Generators.grid 3 3 in
        check_bool "infeasible" true
          (Vf2.extend ~pattern ~target ~fixed:[ (0, 0); (1, 8) ] = None));
    test_case "extend rejects conflicting fixed" (fun () ->
        let pattern = Generators.path 3 and target = Generators.grid 3 3 in
        Alcotest.check_raises "conflict"
          (Invalid_argument "Vf2.extend: conflicting fixed assignment")
          (fun () ->
            ignore (Vf2.extend ~pattern ~target ~fixed:[ (0, 2); (1, 2) ])));
    test_case "is_isomorphic distinguishes path and star" (fun () ->
        check_bool "not iso" false
          (Vf2.is_isomorphic (Generators.path 4) (Generators.star 4));
        check_bool "iso to self" true
          (Vf2.is_isomorphic (Generators.cycle 6) (Generators.cycle 6)));
    test_case "node_limit gives up gracefully" (fun () ->
        let pattern = Generators.cycle 12 and target = Generators.grid 5 5 in
        check_bool "budget too small" true
          (Vf2.find ~node_limit:2 ~pattern ~target () = None));
    test_case "find_with_stats counts nodes" (fun () ->
        let _, stats =
          Vf2.find_with_stats ~pattern:(Generators.path 3)
            ~target:(Generators.grid 3 3) ()
        in
        check_bool "visited some" true (stats.Vf2.nodes_visited > 0));
  ]

let vf2_props =
  [
    QCheck.Test.make ~name:"relabelled subgraph always embeds" ~count:100
      graph_arb (fun (n, edges) ->
        let g = Graph.create n edges in
        let rng = Rng.create (Hashtbl.hash (n, edges)) in
        let perm = Rng.permutation rng n in
        let target =
          Graph.add_edges (Graph.relabel g perm)
            (match Graph.complement_edges (Graph.relabel g perm) with
            | [] -> []
            | e :: _ -> [ e ])
        in
        match Vf2.find ~pattern:g ~target () with
        | None -> false
        | Some f -> check_valid_monomorphism g target f);
    QCheck.Test.make ~name:"found monomorphisms are valid" ~count:100
      (QCheck.pair graph_arb graph_arb)
      (fun ((n1, e1), (n2, e2)) ->
        let pattern = Graph.create n1 e1 in
        let target = Graph.create (n1 + n2) e2 in
        match Vf2.find ~pattern ~target () with
        | None -> true
        | Some f -> check_valid_monomorphism pattern target f);
  ]

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let generators_tests =
  [
    test_case "path shape" (fun () ->
        let g = Generators.path 6 in
        check_int "edges" 5 (Graph.n_edges g);
        check_int "end degree" 1 (Graph.degree g 0);
        check_int "mid degree" 2 (Graph.degree g 3));
    test_case "cycle shape" (fun () ->
        let g = Generators.cycle 7 in
        check_int "edges" 7 (Graph.n_edges g);
        check_bool "closes" true (Graph.mem_edge g 0 6));
    test_case "cycle too small" (fun () ->
        Alcotest.check_raises "small"
          (Invalid_argument "Generators.cycle: need at least 3 vertices")
          (fun () -> ignore (Generators.cycle 2)));
    test_case "grid shape" (fun () ->
        let g = Generators.grid 3 4 in
        check_int "vertices" 12 (Graph.n_vertices g);
        check_int "edges" 17 (Graph.n_edges g);
        check_int "corner degree" 2 (Graph.degree g 0));
    test_case "complete graph" (fun () ->
        let g = Generators.complete 6 in
        check_int "edges" 15 (Graph.n_edges g));
    test_case "random_connected is connected" (fun () ->
        let rng = Rng.create 31 in
        for _ = 1 to 20 do
          let g = Generators.random_connected rng ~n:12 ~extra_edges:4 in
          check_bool "connected" true (Graph.is_connected g);
          check_int "edge count" 15 (Graph.n_edges g)
        done);
    test_case "random_connected saturates extra edges" (fun () ->
        let rng = Rng.create 37 in
        let g = Generators.random_connected rng ~n:4 ~extra_edges:100 in
        check_int "complete" 6 (Graph.n_edges g));
    test_case "gnp extremes" (fun () ->
        let rng = Rng.create 41 in
        check_int "p=0" 0 (Graph.n_edges (Generators.gnp rng ~n:10 ~p:0.0));
        check_int "p=1" 45 (Graph.n_edges (Generators.gnp rng ~n:10 ~p:1.0)));
  ]

let () =
  Alcotest.run "qls_graph"
    [
      ("rng", rng_tests);
      ("graph", graph_tests);
      ("graph-properties", List.map QCheck_alcotest.to_alcotest graph_props);
      ("bfs", bfs_tests);
      ("apsp", apsp_tests);
      ("pqueue", pqueue_tests);
      ("pqueue-properties", List.map QCheck_alcotest.to_alcotest pqueue_props);
      ("vf2", vf2_tests);
      ("vf2-properties", List.map QCheck_alcotest.to_alcotest vf2_props);
      ("generators", generators_tests);
    ]
