(* Tests for the CDCL SAT solver: hand instances, pigeonhole refutations
   and random 3-SAT cross-checked against a brute-force evaluator. *)

module Solver = Qls_sat.Solver
module Rng = Qls_graph.Rng

let check_bool = Alcotest.(check bool)
let test_case name f = Alcotest.test_case name `Quick f

let solve_clauses nv clauses =
  let s = Solver.create nv in
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let is_sat = function Solver.Sat -> true | Solver.Unsat | Solver.Unknown -> false
let is_unsat = function Solver.Unsat -> true | Solver.Sat | Solver.Unknown -> false

let model_satisfies s clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let v = abs l in
          if l > 0 then Solver.value s v else not (Solver.value s v))
        clause)
    clauses

(* Pigeonhole principle: n+1 pigeons, n holes — classic UNSAT family.
   Variable p*n + h + 1 = "pigeon p sits in hole h". *)
let pigeonhole n =
  let var p h = (p * n) + h + 1 in
  let nv = (n + 1) * n in
  let clauses = ref [] in
  for p = 0 to n do
    clauses := List.init n (fun h -> var p h) :: !clauses
  done;
  for h = 0 to n - 1 do
    for p = 0 to n do
      for p' = p + 1 to n do
        clauses := [ -var p h; -var p' h ] :: !clauses
      done
    done
  done;
  (nv, !clauses)

let basic_tests =
  [
    test_case "empty formula is satisfiable" (fun () ->
        let _, r = solve_clauses 3 [] in
        check_bool "sat" true (is_sat r));
    test_case "unit clauses force the model" (fun () ->
        let s, r = solve_clauses 3 [ [ 1 ]; [ -2 ]; [ 3 ] ] in
        check_bool "sat" true (is_sat r);
        check_bool "v1" true (Solver.value s 1);
        check_bool "v2" false (Solver.value s 2);
        check_bool "v3" true (Solver.value s 3));
    test_case "contradicting units are unsat" (fun () ->
        let _, r = solve_clauses 2 [ [ 1 ]; [ -1 ] ] in
        check_bool "unsat" true (is_unsat r));
    test_case "empty clause is unsat" (fun () ->
        let _, r = solve_clauses 2 [ [] ] in
        check_bool "unsat" true (is_unsat r));
    test_case "tautologies are ignored" (fun () ->
        let _, r = solve_clauses 2 [ [ 1; -1 ]; [ 2 ] ] in
        check_bool "sat" true (is_sat r));
    test_case "simple implication chain" (fun () ->
        (* 1, 1->2, 2->3, 3->4 forces all true *)
        let s, r = solve_clauses 4 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ] in
        check_bool "sat" true (is_sat r);
        check_bool "v4 forced" true (Solver.value s 4));
    test_case "xor chain needs real search" (fun () ->
        (* (1 xor 2), (2 xor 3), (1 xor 3) is unsat *)
        let _, r =
          solve_clauses 3
            [ [ 1; 2 ]; [ -1; -2 ]; [ 2; 3 ]; [ -2; -3 ]; [ 1; 3 ]; [ -1; -3 ] ]
        in
        check_bool "unsat" true (is_unsat r));
    test_case "pigeonhole 2 into 1" (fun () ->
        let nv, clauses = pigeonhole 1 in
        let _, r = solve_clauses nv clauses in
        check_bool "unsat" true (is_unsat r));
    test_case "pigeonhole 4 into 3" (fun () ->
        let nv, clauses = pigeonhole 3 in
        let _, r = solve_clauses nv clauses in
        check_bool "unsat" true (is_unsat r));
    test_case "pigeonhole 6 into 5 (forces clause learning)" (fun () ->
        let nv, clauses = pigeonhole 5 in
        let s, r = solve_clauses nv clauses in
        check_bool "unsat" true (is_unsat r);
        let conflicts, _ = Solver.stats s in
        check_bool "searched" true (conflicts > 0));
    test_case "n holes do fit n pigeons" (fun () ->
        (* drop one pigeon: satisfiable *)
        let n = 4 in
        let var p h = (p * n) + h + 1 in
        let clauses = ref [] in
        for p = 0 to n - 1 do
          clauses := List.init n (fun h -> var p h) :: !clauses
        done;
        for h = 0 to n - 1 do
          for p = 0 to n - 1 do
            for p' = p + 1 to n - 1 do
              clauses := [ -var p h; -var p' h ] :: !clauses
            done
          done
        done;
        let s, r = solve_clauses (n * n) !clauses in
        check_bool "sat" true (is_sat r);
        check_bool "model valid" true (model_satisfies s !clauses));
    test_case "add_clause rejects bad literals" (fun () ->
        let s = Solver.create 2 in
        check_bool "raises" true
          (try
             Solver.add_clause s [ 0 ];
             false
           with Invalid_argument _ -> true);
        check_bool "raises range" true
          (try
             Solver.add_clause s [ 5 ];
             false
           with Invalid_argument _ -> true));
    test_case "value without model rejected" (fun () ->
        let s = Solver.create 1 in
        Solver.add_clause s [ 1 ];
        check_bool "raises" true
          (try
             ignore (Solver.value s 1);
             false
           with Invalid_argument _ -> true));
    test_case "conflict budget reports unknown" (fun () ->
        let nv, clauses = pigeonhole 6 in
        let s = Solver.create nv in
        List.iter (Solver.add_clause s) clauses;
        check_bool "unknown" true (Solver.solve ~conflict_budget:1 s = Solver.Unknown));
  ]

(* Brute-force evaluator for cross-checking. *)
let brute_sat nv clauses =
  let rec go assignment v =
    if v > nv then
      List.for_all
        (fun clause ->
          List.exists
            (fun l -> if l > 0 then assignment.(l) else not assignment.(-l))
            clause)
        clauses
    else begin
      assignment.(v) <- true;
      go assignment (v + 1)
      ||
      (assignment.(v) <- false;
       go assignment (v + 1))
    end
  in
  go (Array.make (nv + 1) false) 1

let random_props =
  [
    QCheck.Test.make ~name:"CDCL agrees with brute force on random 3-SAT"
      ~count:300
      QCheck.(int_range 0 100_000)
      (fun seed ->
        let rng = Rng.create seed in
        let nv = 4 + Rng.int rng 7 in
        let n_clauses = 2 + Rng.int rng (4 * nv) in
        let clauses =
          List.init n_clauses (fun _ ->
              List.init 3 (fun _ ->
                  let v = 1 + Rng.int rng nv in
                  if Rng.bool rng then v else -v))
        in
        let s, r = solve_clauses nv clauses in
        match r with
        | Solver.Sat -> model_satisfies s clauses && brute_sat nv clauses
        | Solver.Unsat -> not (brute_sat nv clauses)
        | Solver.Unknown -> false);
  ]

let () =
  Alcotest.run "qls_sat"
    [
      ("solver", basic_tests);
      ("random", List.map QCheck_alcotest.to_alcotest random_props);
    ]
