(* Test-only brute-force optimal SWAP-count oracle for tiny instances.

   Breadth-first search over (mapping, executed-gate-set) states, starting
   from every possible initial mapping, with eager gate execution (which
   never costs SWAPs). Exponential in everything — only for cross-checking
   Qls_router.Exact on devices with <= 6 physical qubits and short
   circuits. *)

module Graph = Qls_graph.Graph
module Circuit = Qls_circuit.Circuit
module Dag = Qls_circuit.Dag
module Device = Qls_arch.Device

(* All injective placements of [k] program qubits onto [n] positions. *)
let placements k n =
  let rec go chosen used depth =
    if depth = k then [ List.rev chosen ]
    else
      List.concat_map
        (fun p -> if List.mem p used then [] else go (p :: chosen) (p :: used) (depth + 1))
        (List.init n Fun.id)
  in
  go [] [] 0

(* Eagerly execute every executable gate; returns the executed bitmask. *)
let closure device dag q2p mask =
  let n = Dag.n_gates dag in
  let mask = ref mask in
  let progress = ref true in
  while !progress do
    progress := false;
    for v = 0 to n - 1 do
      if (!mask lsr v) land 1 = 0 then begin
        let ready =
          List.for_all (fun p -> (!mask lsr p) land 1 = 1) (Dag.predecessors dag v)
        in
        let a, b = Dag.pair dag v in
        if ready && Device.coupled device q2p.(a) q2p.(b) then begin
          mask := !mask lor (1 lsl v);
          progress := true
        end
      end
    done
  done;
  !mask

let minimum_swaps device circuit =
  let dag = Dag.of_circuit circuit in
  let n_gates = Dag.n_gates dag in
  if n_gates > 16 then invalid_arg "Brute: circuit too large";
  let n_prog = Circuit.n_qubits circuit in
  let n_phys = Device.n_qubits device in
  let full = (1 lsl n_gates) - 1 in
  let edges = Array.of_list (Device.edges device) in
  let seen = Hashtbl.create 4096 in
  let queue = Queue.create () in
  List.iter
    (fun placement ->
      let q2p = Array.of_list placement in
      let mask = closure device dag q2p 0 in
      let key = (Array.to_list q2p, mask) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Queue.add (q2p, mask, 0) queue
      end)
    (placements n_prog n_phys);
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let q2p, mask, swaps = Queue.pop queue in
    if mask = full then result := Some swaps
    else
      Array.iter
        (fun (p, p') ->
          let q2p' = Array.copy q2p in
          Array.iteri
            (fun q pos ->
              if pos = p then q2p'.(q) <- p'
              else if pos = p' then q2p'.(q) <- p)
            q2p;
          let mask' = closure device dag q2p' mask in
          let key = (Array.to_list q2p', mask') in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            Queue.add (q2p', mask', swaps + 1) queue
          end)
        edges
  done;
  match !result with
  | Some s -> s
  | None -> invalid_arg "Brute: no solution (disconnected device?)"
