test/router/brute.ml: Array Fun Hashtbl List Qls_arch Qls_circuit Qls_graph Queue
