test/router/test_qls_router.mli:
