test/router/test_qls_router.ml: Alcotest Array Brute List Option Printf QCheck QCheck_alcotest Qls_arch Qls_circuit Qls_graph Qls_layout Qls_router
