(* End-to-end integration tests: full pipelines across all libraries.

   These tests intentionally cross module boundaries — generate on real
   device topologies, serialise through QASM, route with every tool,
   verify every result, and hold the routers to the generator's optimum
   as a lower bound. *)

module Gate = Qls_circuit.Gate
module Circuit = Qls_circuit.Circuit
module Qasm = Qls_circuit.Qasm
module Topologies = Qls_arch.Topologies
module Device = Qls_arch.Device
module Mapping = Qls_layout.Mapping
module Transpiled = Qls_layout.Transpiled
module Verifier = Qls_layout.Verifier
module Router = Qls_router.Router
module Registry = Qls_router.Registry
module Sabre = Qls_router.Sabre
module Exact = Qls_router.Exact
module Benchmark = Qubikos.Benchmark
module Generator = Qubikos.Generator
module Certificate = Qubikos.Certificate
module Queko = Qubikos.Queko

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

let gen device ~n_swaps ~gate_budget ~seed =
  Generator.generate
    ~config:{ Generator.default_config with n_swaps; gate_budget; seed }
    device

(* ------------------------------------------------------------------ *)
(* Generate -> certify -> route -> verify, on every paper device       *)
(* ------------------------------------------------------------------ *)

let pipeline_tests =
  List.map
    (fun device ->
      test_case
        (Printf.sprintf "generate+certify+route on %s" (Device.name device))
        (fun () ->
          let bench = gen device ~n_swaps:3 ~gate_budget:120 ~seed:5 in
          Certificate.check_exn bench;
          List.iter
            (fun tool ->
              let _, report =
                Router.run_verified tool device bench.Benchmark.circuit
              in
              check_bool
                (Printf.sprintf "%s respects the optimum" tool.Router.name)
                true
                (report.Verifier.swap_count >= bench.Benchmark.optimal_swaps))
            (Registry.paper_tools ~sabre_trials:2 ())))
    [ Topologies.aspen4 (); Topologies.falcon27 (); Topologies.grid 3 4 ]

(* ------------------------------------------------------------------ *)
(* Lower bound holds for every tool on many random instances           *)
(* ------------------------------------------------------------------ *)

let lower_bound_props =
  [
    QCheck.Test.make
      ~name:"no tool ever beats the generator's designed optimum" ~count:15
      QCheck.(pair (int_range 1 4) (int_range 0 1_000))
      (fun (n_swaps, seed) ->
        let device = Topologies.aspen4 () in
        let bench = gen device ~n_swaps ~gate_budget:60 ~seed in
        List.for_all
          (fun tool ->
            Router.swap_count tool device bench.Benchmark.circuit >= n_swaps)
          (Registry.paper_tools ~sabre_trials:1 ()));
    QCheck.Test.make
      ~name:"exact solver matches the designed optimum on small instances"
      ~count:8
      QCheck.(pair (int_range 1 2) (int_range 0 1_000))
      (fun (n_swaps, seed) ->
        let device = Topologies.grid 3 3 in
        let bench =
          Generator.generate
            ~config:
              {
                Generator.default_config with
                n_swaps;
                gate_budget = 25;
                saturation_cap = 1;
                seed;
              }
            device
        in
        match Exact.minimum_swaps ~max_swaps:4 device bench.Benchmark.circuit with
        | Exact.Optimal { swaps; _ } -> swaps = n_swaps
        | Exact.Unknown_above _ -> QCheck.assume_fail ());
    QCheck.Test.make
      ~name:"SAT solver matches the designed optimum on small instances"
      ~count:10
      QCheck.(pair (int_range 1 3) (int_range 0 1_000))
      (fun (n_swaps, seed) ->
        let device = Topologies.aspen4 () in
        let bench =
          Generator.generate
            ~config:
              {
                Generator.default_config with
                n_swaps;
                gate_budget = 30;
                saturation_cap = 1;
                seed;
              }
            device
        in
        match
          Qls_router.Olsq.minimum_swaps ~max_swaps:4 device
            bench.Benchmark.circuit
        with
        | Qls_router.Olsq.Optimal { swaps; witness } ->
            swaps = n_swaps && Verifier.is_valid witness
        | Qls_router.Olsq.Unknown_above _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* QASM as the interchange boundary                                    *)
(* ------------------------------------------------------------------ *)

let qasm_tests =
  [
    test_case "benchmark survives QASM and routes identically" (fun () ->
        let device = Topologies.aspen4 () in
        let bench = gen device ~n_swaps:2 ~gate_budget:80 ~seed:3 in
        let reread = Qasm.of_string (Qasm.to_string bench.Benchmark.circuit) in
        check_bool "circuit identical" true
          (Circuit.equal reread bench.Benchmark.circuit);
        let sabre = Sabre.router () in
        let s1 = Router.swap_count sabre device bench.Benchmark.circuit in
        let s2 = Router.swap_count sabre device reread in
        check_int "same routing result" s1 s2);
    test_case "transpiled physical circuit emits and parses as QASM" (fun () ->
        let device = Topologies.grid 3 3 in
        let bench = gen device ~n_swaps:2 ~gate_budget:40 ~seed:8 in
        let physical = Transpiled.to_physical_circuit bench.Benchmark.designed in
        let reread = Qasm.of_string (Qasm.to_string physical) in
        check_bool "physical circuit round-trips" true (Circuit.equal physical reread);
        check_int "contains the designed swaps" 2
          (Array.fold_left
             (fun acc g -> if Gate.is_swap g then acc + 1 else acc)
             0 (Circuit.gates reread)));
    test_case "queko instance round-trips and stays swap-free" (fun () ->
        let device = Topologies.sycamore54 () in
        let q = Queko.generate ~seed:2 ~depth:10 device in
        let reread = Qasm.of_string (Qasm.to_string q.Queko.circuit) in
        check_bool "still swap-free" true
          (Qls_circuit.Interaction.swap_free reread (Device.graph device)));
  ]

(* ------------------------------------------------------------------ *)
(* Single-qubit gates through the whole pipeline                       *)
(* ------------------------------------------------------------------ *)

let single_qubit_tests =
  [
    test_case "instances with 1q gates route and verify with every tool"
      (fun () ->
        let device = Topologies.grid 3 3 in
        let bench =
          Generator.generate
            ~config:
              {
                Generator.default_config with
                n_swaps = 2;
                gate_budget = 40;
                single_qubit_ratio = 0.4;
                seed = 6;
              }
            device
        in
        Certificate.check_exn bench;
        check_bool "has 1q gates" true
          (Circuit.single_qubit_count bench.Benchmark.circuit > 0);
        List.iter
          (fun tool ->
            let t, _ = Router.run_verified tool device bench.Benchmark.circuit in
            check_int
              (Printf.sprintf "%s emits every gate" tool.Router.name)
              (Circuit.length bench.Benchmark.circuit)
              (List.length
                 (List.filter
                    (function Transpiled.Gate _ -> true | Transpiled.Swap _ -> false)
                    (Transpiled.ops t))))
          (Registry.paper_tools ~sabre_trials:1 ()));
    test_case "exact solver preserves 1q gates" (fun () ->
        let device = Topologies.line 4 in
        let c =
          Circuit.create ~n_qubits:3
            [ Gate.h 0; Gate.cx 0 1; Gate.x 1; Gate.cx 1 2; Gate.h 2; Gate.cx 0 2 ]
        in
        match Exact.minimum_swaps device c with
        | Exact.Optimal { witness; _ } ->
            let r = Verifier.check_exn witness in
            check_bool "valid" true (r.Verifier.swap_count >= 1)
        | Exact.Unknown_above _ -> Alcotest.fail "small instance must solve");
  ]

(* ------------------------------------------------------------------ *)
(* Device registry end-to-end                                          *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  [
    test_case "generation works on every by_name device" (fun () ->
        List.iter
          (fun name ->
            match Topologies.by_name name with
            | None -> Alcotest.fail ("unknown device " ^ name)
            | Some device ->
                let bench = gen device ~n_swaps:1 ~gate_budget:0 ~seed:1 in
                Certificate.check_exn bench)
          [ "aspen4"; "sycamore"; "rochester"; "eagle"; "falcon"; "grid3x3";
            "line6"; "ring7"; "heavyhex3" ]);
    test_case "router-only mode: tools accept an initial mapping" (fun () ->
        let device = Topologies.aspen4 () in
        let bench = gen device ~n_swaps:2 ~gate_budget:60 ~seed:9 in
        let initial = bench.Benchmark.initial_mapping in
        List.iter
          (fun tool ->
            let t = tool.Router.route ~initial device bench.Benchmark.circuit in
            check_bool
              (Printf.sprintf "%s keeps the given mapping" tool.Router.name)
              true
              (Mapping.equal (Transpiled.initial_mapping t) initial))
          (Registry.paper_tools ~sabre_trials:1 ()));
  ]

let () =
  Alcotest.run "integration"
    [
      ("pipeline", pipeline_tests);
      ("lower-bound", List.map QCheck_alcotest.to_alcotest lower_bound_props);
      ("qasm-boundary", qasm_tests);
      ("single-qubit", single_qubit_tests);
      ("registry", registry_tests);
    ]
