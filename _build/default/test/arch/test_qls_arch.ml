(* Tests for the qls_arch library: the device model and the paper's
   topologies. *)

module Device = Qls_arch.Device
module Topologies = Qls_arch.Topologies
module Graph = Qls_graph.Graph
module Rng = Qls_graph.Rng
module Generators = Qls_graph.Generators

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test_case name f = Alcotest.test_case name `Quick f

let device_tests =
  [
    test_case "create rejects disconnected graphs" (fun () ->
        check_bool "raises" true
          (try
             ignore (Device.create ~name:"bad" (Graph.create 4 [ (0, 1) ]));
             false
           with Invalid_argument _ -> true));
    test_case "create rejects empty graphs" (fun () ->
        check_bool "raises" true
          (try
             ignore (Device.create ~name:"empty" (Graph.empty 0));
             false
           with Invalid_argument _ -> true));
    test_case "accessors" (fun () ->
        let d = Topologies.line 5 in
        Alcotest.(check string) "name" "line5" (Device.name d);
        check_int "qubits" 5 (Device.n_qubits d);
        check_int "edges" 4 (Device.n_edges d);
        check_int "diameter" 4 (Device.diameter d);
        check_int "max degree" 2 (Device.max_degree d));
    test_case "distance and coupled agree" (fun () ->
        let d = Topologies.grid 3 3 in
        for u = 0 to 8 do
          for v = 0 to 8 do
            if u <> v then
              check_bool "coupled iff distance 1"
                (Device.distance d u v = 1)
                (Device.coupled d u v)
          done
        done);
    test_case "neighbors and degree agree" (fun () ->
        let d = Topologies.grid 3 3 in
        for v = 0 to 8 do
          check_int "degree" (List.length (Device.neighbors d v)) (Device.degree d v)
        done);
    test_case "ring automorphisms" (fun () ->
        check_int "dihedral" 12 (Device.automorphisms (Topologies.ring 6)));
    test_case "grid3x3 automorphisms" (fun () ->
        check_int "dihedral of square" 8 (Device.automorphisms (Topologies.grid 3 3)));
    test_case "pp mentions the name" (fun () ->
        let s = Format.asprintf "%a" Device.pp (Topologies.line 3) in
        check_bool "has name" true (String.length s > 0 && String.sub s 0 5 = "line3"));
  ]

let device_props =
  [
    QCheck.Test.make ~name:"distance is a metric on random devices" ~count:50
      QCheck.(int_range 0 1000)
      (fun seed ->
        let rng = Rng.create seed in
        let g = Generators.random_connected rng ~n:10 ~extra_edges:5 in
        let d = Device.create ~name:"rand" g in
        let ok = ref true in
        for u = 0 to 9 do
          if Device.distance d u u <> 0 then ok := false;
          for v = 0 to 9 do
            if Device.distance d u v <> Device.distance d v u then ok := false;
            for w = 0 to 9 do
              if Device.distance d u w > Device.distance d u v + Device.distance d v w
              then ok := false
            done
          done
        done;
        !ok);
  ]

(* Published figures for the four paper devices. *)
let topology_tests =
  [
    test_case "aspen4: 16 qubits, 18 couplers, two bridged octagons" (fun () ->
        let d = Topologies.aspen4 () in
        check_int "qubits" 16 (Device.n_qubits d);
        check_int "couplers" 18 (Device.n_edges d);
        check_bool "bridge 1-14" true (Device.coupled d 1 14);
        check_bool "bridge 2-13" true (Device.coupled d 2 13);
        Alcotest.(check (list (pair int int))) "degrees: 12 ring qubits of 2, 4 bridge ends of 3"
          [ (2, 12); (3, 4) ]
          (Graph.degree_histogram (Device.graph d)));
    test_case "sycamore: 54 qubits, 88 couplers, degree <= 4" (fun () ->
        let d = Topologies.sycamore54 () in
        check_int "qubits" 54 (Device.n_qubits d);
        check_int "couplers" 88 (Device.n_edges d);
        check_int "max degree" 4 (Device.max_degree d));
    test_case "rochester: 53 qubits, 58 couplers, two pendant qubits" (fun () ->
        let d = Topologies.rochester () in
        check_int "qubits" 53 (Device.n_qubits d);
        check_int "couplers" 58 (Device.n_edges d);
        let hist = Graph.degree_histogram (Device.graph d) in
        check_int "pendants" 2 (List.assoc 1 hist);
        check_int "max degree" 3 (Device.max_degree d));
    test_case "eagle: 127 qubits, 144 couplers, heavy-hex degrees" (fun () ->
        let d = Topologies.eagle127 () in
        check_int "qubits" 127 (Device.n_qubits d);
        check_int "couplers" 144 (Device.n_edges d);
        check_int "max degree" 3 (Device.max_degree d);
        (* ibm_washington's first row: a chain 0..13 with spacer 14 on
           column 0 connecting to 18. *)
        check_bool "0-1" true (Device.coupled d 0 1);
        check_bool "0-14" true (Device.coupled d 0 14);
        check_bool "14-18" true (Device.coupled d 14 18));
    test_case "falcon: 27 qubits, 28 couplers" (fun () ->
        let d = Topologies.falcon27 () in
        check_int "qubits" 27 (Device.n_qubits d);
        check_int "couplers" 28 (Device.n_edges d);
        check_int "max degree" 3 (Device.max_degree d));
    test_case "heavy-hex family sizes" (fun () ->
        check_int "d=3" 23 (Device.n_qubits (Topologies.heavy_hex ~distance:3));
        check_int "d=5" 65 (Device.n_qubits (Topologies.heavy_hex ~distance:5));
        check_int "d=7 is Eagle" 127 (Device.n_qubits (Topologies.heavy_hex ~distance:7)));
    test_case "heavy-hex validates distance" (fun () ->
        check_bool "even rejected" true
          (try
             ignore (Topologies.heavy_hex ~distance:4);
             false
           with Invalid_argument _ -> true));
    test_case "all_paper_devices order" (fun () ->
        Alcotest.(check (list string)) "paper order"
          [ "aspen4"; "sycamore"; "rochester"; "eagle" ]
          (List.map Device.name (Topologies.all_paper_devices ())));
    test_case "grid is the mesh" (fun () ->
        let d = Topologies.grid 2 4 in
        check_int "qubits" 8 (Device.n_qubits d);
        check_int "edges" 10 (Device.n_edges d));
    test_case "by_name resolves concrete devices" (fun () ->
        List.iter
          (fun (name, qubits) ->
            match Topologies.by_name name with
            | None -> Alcotest.fail ("unresolved: " ^ name)
            | Some d -> check_int name qubits (Device.n_qubits d))
          [
            ("aspen4", 16); ("aspen-4", 16); ("sycamore", 54); ("rochester", 53);
            ("eagle", 127); ("falcon", 27); ("grid3x3", 9);
          ]);
    test_case "by_name resolves parametric devices" (fun () ->
        List.iter
          (fun (name, qubits) ->
            match Topologies.by_name name with
            | None -> Alcotest.fail ("unresolved: " ^ name)
            | Some d -> check_int name qubits (Device.n_qubits d))
          [ ("line12", 12); ("ring8", 8); ("grid4x5", 20); ("heavyhex5", 65) ]);
    test_case "by_name rejects unknown" (fun () ->
        check_bool "nonsense" true (Topologies.by_name "nonsense" = None);
        check_bool "gridXxY" true (Topologies.by_name "gridaxb" = None);
        check_bool "line-" true (Topologies.by_name "lineX" = None);
        check_bool "bad ring" true (Topologies.by_name "ring2" = None));
    test_case "sycamore interior qubits have 4 diagonal neighbours" (fun () ->
        let d = Topologies.sycamore54 () in
        (* qubit (4, 3) = 4*6+3 = 27 is interior *)
        check_int "interior degree" 4 (Device.degree d 27));
    test_case "rochester matches its published edge list spot checks" (fun () ->
        let d = Topologies.rochester () in
        check_bool "0-5" true (Device.coupled d 0 5);
        check_bool "5-9" true (Device.coupled d 5 9);
        check_bool "44-51 pendant" true (Device.coupled d 44 51);
        check_bool "48-52 pendant" true (Device.coupled d 48 52);
        check_bool "no 0-2" false (Device.coupled d 0 2));
  ]

let noise_tests =
  [
    test_case "uniform model assigns the same rates everywhere" (fun () ->
        let d = Topologies.grid 3 3 in
        let n = Qls_arch.Noise.uniform ~q1:1e-4 ~q2:5e-3 ~readout:1e-2 d in
        Alcotest.(check (float 1e-12)) "q1" 1e-4 (Qls_arch.Noise.q1_error n 4);
        Alcotest.(check (float 1e-12)) "q2" 5e-3 (Qls_arch.Noise.q2_error n 0 1);
        Alcotest.(check (float 1e-12)) "q2 symmetric" 5e-3 (Qls_arch.Noise.q2_error n 1 0);
        Alcotest.(check (float 1e-12)) "readout" 1e-2 (Qls_arch.Noise.readout_error n 8));
    test_case "uniform rejects out-of-range rates" (fun () ->
        check_bool "raises" true
          (try
             ignore (Qls_arch.Noise.uniform ~q2:1.5 (Topologies.line 3));
             false
           with Invalid_argument _ -> true));
    test_case "q2_error rejects non-couplers" (fun () ->
        let n = Qls_arch.Noise.uniform (Topologies.line 4) in
        check_bool "raises" true
          (try
             ignore (Qls_arch.Noise.q2_error n 0 2);
             false
           with Invalid_argument _ -> true));
    test_case "random model stays within the spread" (fun () ->
        let rng = Rng.create 5 in
        let d = Topologies.aspen4 () in
        let n = Qls_arch.Noise.random rng ~q2:7e-3 ~spread:3.0 d in
        List.iter
          (fun (p, p') ->
            let e = Qls_arch.Noise.q2_error n p p' in
            check_bool "bounded" true (e >= 7e-3 /. 3.0 && e <= 7e-3 *. 3.0))
          (Device.edges d));
    test_case "best and worst couplers bracket the rest" (fun () ->
        let rng = Rng.create 9 in
        let d = Topologies.grid 3 3 in
        let n = Qls_arch.Noise.random rng d in
        let _, best = Qls_arch.Noise.best_coupler n in
        let _, worst = Qls_arch.Noise.worst_coupler n in
        List.iter
          (fun (p, p') ->
            let e = Qls_arch.Noise.q2_error n p p' in
            check_bool "in range" true (best <= e && e <= worst))
          (Device.edges d));
  ]

let () =
  Alcotest.run "qls_arch"
    [
      ("device", device_tests);
      ("device-properties", List.map QCheck_alcotest.to_alcotest device_props);
      ("topologies", topology_tests);
      ("noise", noise_tests);
    ]
