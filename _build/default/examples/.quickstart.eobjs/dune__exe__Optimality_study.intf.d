examples/optimality_study.mli:
