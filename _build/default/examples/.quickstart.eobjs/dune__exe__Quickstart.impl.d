examples/quickstart.ml: Filename Format Option Qls_arch Qls_circuit Qls_layout Qls_router Qubikos
