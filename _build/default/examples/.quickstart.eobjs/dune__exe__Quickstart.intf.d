examples/quickstart.mli:
