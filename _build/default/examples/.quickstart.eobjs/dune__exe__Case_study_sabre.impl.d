examples/case_study_sabre.ml: Format List Printf Qls_arch Qls_layout Qls_router Qubikos String
