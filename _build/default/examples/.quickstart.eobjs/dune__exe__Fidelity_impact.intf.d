examples/fidelity_impact.mli:
