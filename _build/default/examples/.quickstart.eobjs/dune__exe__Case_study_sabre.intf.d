examples/case_study_sabre.mli:
