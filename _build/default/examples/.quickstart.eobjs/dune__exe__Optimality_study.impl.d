examples/optimality_study.ml: Format List Qls_arch Qubikos
