examples/evaluate_routers.mli:
