examples/fidelity_impact.ml: Format List Option Qls_arch Qls_graph Qls_layout Qls_router Qubikos
