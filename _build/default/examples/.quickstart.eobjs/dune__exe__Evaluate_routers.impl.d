examples/evaluate_routers.ml: Format List Qls_arch Qubikos
