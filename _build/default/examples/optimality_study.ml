(* The paper's §IV-A optimality study, miniature edition: generate small
   instances on the two study devices and confirm every designed SWAP
   count with the independent exact solver.

   Run with:  dune exec examples/optimality_study.exe *)

module Evaluation = Qubikos.Evaluation
module Topologies = Qls_arch.Topologies

let () =
  Format.printf
    "Optimality study (cf. paper §IV-A): each instance's designed SWAP@.";
  Format.printf
    "count is re-proved by the structural certificate and the exact solver.@.@.";
  List.iter
    (fun device ->
      let rows =
        Evaluation.run_optimality_study ~circuits_per_count:3
          ~swap_counts:[ 1; 2; 3 ] ~gate_budget:30 ~saturation_cap:1 ~seed:11
          device
      in
      Format.printf "@[<v>%a@]@." Evaluation.pp_optimality rows)
    [ Topologies.grid 3 3; Topologies.aspen4 () ]
