(* Quickstart: generate a benchmark with a known optimal SWAP count,
   re-prove the optimum, route it with a tool, and measure the gap.

   Run with:  dune exec examples/quickstart.exe *)

module Benchmark = Qubikos.Benchmark
module Generator = Qubikos.Generator
module Certificate = Qubikos.Certificate
module Topologies = Qls_arch.Topologies
module Qasm = Qls_circuit.Qasm
module Circuit = Qls_circuit.Circuit
module Router = Qls_router.Router
module Registry = Qls_router.Registry

let () =
  (* 1. Pick a device. Every architecture from the paper is built in;
        parametric lines / rings / grids / heavy-hex lattices too. *)
  let device = Topologies.aspen4 () in
  Format.printf "device: %a@." Qls_arch.Device.pp device;

  (* 2. Generate a QUBIKOS instance: 300 two-qubit gates whose optimal
        SWAP count on this device is exactly 5 — by construction. *)
  let bench =
    Generator.generate
      ~config:
        { Generator.default_config with n_swaps = 5; gate_budget = 300; seed = 4 }
      device
  in
  Format.printf "%a@." Benchmark.pp_summary bench;

  (* 3. Don't trust the generator — re-prove the optimum. The certificate
        re-checks the paper's Lemmas 1-3 (VF2 non-embeddability of every
        section, serialisation in the dependency DAG) and validates the
        designed schedule. *)
  Certificate.check_exn bench;
  Format.printf "optimality certificate: OK@.";

  (* 4. Route it with a real tool and compare against the known optimum.
        Every router's output is re-verified gate by gate. *)
  let sabre = Option.get (Registry.by_name ~sabre_trials:10 "sabre") in
  let _, report = Router.run_verified sabre device bench.Benchmark.circuit in
  Format.printf "lightsabre (10 trials): %d swaps for an optimal %d -> gap %.1fx@."
    report.Qls_layout.Verifier.swap_count bench.Benchmark.optimal_swaps
    (float_of_int report.Qls_layout.Verifier.swap_count
    /. float_of_int bench.Benchmark.optimal_swaps);

  (* 5. Interoperate: the instance serialises to OpenQASM 2.0, so any
        external layout tool can consume it. *)
  let path = Filename.temp_file "qubikos" ".qasm" in
  Qasm.write_file path bench.Benchmark.circuit;
  let reread = Qasm.read_file path in
  assert (Circuit.equal reread bench.Benchmark.circuit);
  Format.printf "round-tripped through %s@." path
