(* A miniature Fig.-4 panel: evaluate all four QLS tools on QUBIKOS
   instances for one device and print the SWAP ratios.

   Run with:  dune exec examples/evaluate_routers.exe *)

module Evaluation = Qubikos.Evaluation
module Topologies = Qls_arch.Topologies

let () =
  let device = Topologies.aspen4 () in
  let config =
    {
      (Evaluation.default_figure_config device) with
      swap_counts = [ 5; 10 ];
      circuits_per_point = 2;
      sabre_trials = 5;
      seed = 3;
    }
  in
  Format.printf
    "Tool evaluation on %s (cf. paper Fig. 4(a)): SWAP ratio is the mean@."
    (Qls_arch.Device.name device);
  Format.printf "inserted SWAP count divided by the known optimum.@.@.";
  let points = Evaluation.run_figure ~config device in
  Format.printf "@[<v>%a@]@." Evaluation.pp_points points;
  Format.printf "mean optimality gap per tool (1.0x = optimal):@.";
  List.iter
    (fun (tool, gap) -> Format.printf "  %-8s %6.1fx@." tool gap)
    (Evaluation.tool_gap_summary points)
