(* Fidelity impact of layout quality (extension of the paper's
   motivation): estimate the success probability of transpiled circuits
   under a calibrated-style error model, comparing the designed-optimal
   schedule against real tools.

   Run with:  dune exec examples/fidelity_impact.exe *)

module Topologies = Qls_arch.Topologies
module Noise = Qls_arch.Noise
module Transpiled = Qls_layout.Transpiled
module Fidelity = Qls_layout.Fidelity
module Router = Qls_router.Router
module Registry = Qls_router.Registry
module Generator = Qubikos.Generator
module Benchmark = Qubikos.Benchmark

let () =
  let device = Topologies.aspen4 () in
  let bench =
    Generator.generate
      ~config:
        { Generator.default_config with n_swaps = 5; gate_budget = 300; seed = 5 }
      device
  in
  (* A per-qubit randomised error model, like real calibration data. *)
  let rng = Qls_graph.Rng.create 42 in
  let noise = Noise.random rng ~q2:7e-3 ~spread:3.0 device in
  Format.printf "instance: %a@." Benchmark.pp_summary bench;
  let (bp, be) = Noise.best_coupler noise and (wp, we) = Noise.worst_coupler noise in
  Format.printf "noise: best coupler (%d,%d) @ %.2e, worst (%d,%d) @ %.2e@.@."
    (fst bp) (snd bp) be (fst wp) (snd wp) we;
  let show name t =
    Format.printf "  %-10s %4d swaps   log-success %8.3f   swap overhead %7.3f@."
      name (Transpiled.swap_count t)
      (Fidelity.log_success noise t)
      (Fidelity.swap_overhead_cost noise t)
  in
  show "designed" bench.Benchmark.designed;
  List.iter
    (fun name ->
      let tool = Option.get (Registry.by_name ~sabre_trials:5 name) in
      let t, _ = Router.run_verified tool device bench.Benchmark.circuit in
      show name t)
    [ "sabre"; "tket"; "transition" ]
