(* The paper's §IV-C case study: SABRE's extended set weighs near and far
   lookahead gates equally, which can pick the wrong SWAP; decaying the
   lookahead with distance from the execution layer fixes it on Aspen-4.

   This example routes the same instances with both variants and dumps
   one SWAP decision's candidate scores (the Fig.-5-style cost table).

   Run with:  dune exec examples/case_study_sabre.exe *)

module Sabre = Qls_router.Sabre
module Transpiled = Qls_layout.Transpiled
module Topologies = Qls_arch.Topologies
module Generator = Qubikos.Generator
module Benchmark = Qubikos.Benchmark

let () =
  let device = Topologies.aspen4 () in
  let stock = Sabre.with_trials 4 Sabre.default_options in
  let decayed = { stock with lookahead_decay = Some 0.7 } in
  Format.printf "%-6s %-9s %-12s %-13s@." "seed" "optimal" "stock-sabre"
    "decayed-sabre";
  let t_stock = ref 0 and t_decay = ref 0 in
  for seed = 4 to 9 do
    let bench =
      Generator.generate
        ~config:
          { Generator.default_config with n_swaps = 5; gate_budget = 300; seed }
        device
    in
    let s =
      Transpiled.swap_count (Sabre.route ~options:stock device bench.Benchmark.circuit)
    in
    let d =
      Transpiled.swap_count
        (Sabre.route ~options:decayed device bench.Benchmark.circuit)
    in
    t_stock := !t_stock + s;
    t_decay := !t_decay + d;
    Format.printf "%-6d %-9d %-12d %-13d@." seed 5 s d
  done;
  Format.printf "totals (optimal 30): stock %d, decayed %d@.@." !t_stock !t_decay;

  (* Trace one routing pass and show how close the scores of competing
     SWAP candidates are — the margin the equal-weight lookahead gets
     wrong (cf. the 0.70 vs 0.65 margin in the paper's Fig. 5). *)
  let bench =
    Generator.generate
      ~config:
        { Generator.default_config with n_swaps = 5; gate_budget = 300; seed = 4 }
      device
  in
  let _, decisions = Sabre.route_traced device bench.Benchmark.circuit in
  match decisions with
  | d :: _ ->
      Format.printf "first SWAP decision of the traced pass:@.";
      Format.printf "  blocked gates: %s@."
        (String.concat ", "
           (List.map
              (fun (a, b) -> Printf.sprintf "(q%d,q%d)" a b)
              d.Sabre.front_gates));
      List.iteri
        (fun i ((p, p'), score) ->
          if i < 6 then
            Format.printf "  SWAP(p%d,p%d): score %.4f%s@." p p' score
              (if (p, p') = d.Sabre.chosen then "   <- chosen" else ""))
        d.Sabre.candidates
  | [] -> Format.printf "instance needed no SWAP decisions?!@."
